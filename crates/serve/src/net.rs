//! The network front end: a framed-TCP server and client over
//! [`Server::handle_batch`], speaking the [`crate::wire`] protocol.
//!
//! ## Connection lifecycle (event-driven path)
//!
//! [`NetServer::bind`] opens a listener; [`NetServer::spawn`] starts the
//! server and returns a [`NetServerHandle`]. On unix (unless
//! `EXACLIM_REACTOR=0` — see [`exaclim_runtime::reactor::reactor_enabled`]
//! — or [`NetConfig::reactor`] opts out) the server is **event-driven**:
//! one reactor thread multiplexes every connection as a nonblocking
//! frame state machine over an [`exaclim_runtime::reactor::Reactor`]
//! (raw `epoll`/`poll(2)` FFI, no dependencies):
//!
//! * **header-scan** — bytes accumulate until the fixed 24-byte `ECN1`
//!   header is present and valid (bad magic/version/kind/cap frames are
//!   rejected from the header alone, before any payload is buffered),
//! * **payload-accumulate** — the checksummed payload fills,
//! * **dispatch** — the decoded batch is queued to a small fixed set of
//!   dispatch workers ([`NetConfig::dispatch_threads`]) that run the
//!   in-process batch (which fans out over the shared worker pool —
//!   `EXACLIM_THREADS` still bounds *compute*) and hand the encoded
//!   response **body** — segments referencing the chunk cache, not a
//!   copied frame — back through the reactor's wakeup fd,
//! * **write-drain** — the response leaves frame by frame through a
//!   [`crate::wire::FrameStream`]: each fragment is cut on demand and
//!   written with gathered `writev` straight from the shared chunk
//!   buffers, so per-connection owned memory is bounded by one fragment's
//!   header + metadata ([`NetConfig::stream_chunk_bytes`] governs the
//!   fragment size) no matter how large the slice. At most one response
//!   is in flight per connection, read interest stays off until it
//!   drains, and a write budget of a few frames per readiness round keeps
//!   one fat response from starving its neighbours.
//!
//! Thread count is a constant (reactor + dispatch workers + the shared
//! pool), not a function of connection count: mostly-idle keep-alive
//! fleets cost a registration and a deadline each, nothing more. Idle,
//! half-open, and slowloris connections are reaped when
//! [`NetConfig::idle_timeout`] passes without a complete frame (counted
//! in [`NetStats::reaped_idle`]); connections queued past
//! [`NetConfig::max_connections`] wait in the listener backlog exactly
//! as before. Because buffered bytes are re-parsed each time a response
//! finishes, a client may **pipeline**: write several request frames
//! before reading the first response — responses come back in order.
//!
//! Transport-level failures (bad magic, version mismatch, oversized or
//! corrupt frames) are answered best-effort with an error frame and then
//! the connection is closed — once framing is suspect, nothing after the
//! bad frame can be trusted. Per-request failures (unknown member, bad
//! range) travel *inside* a well-formed response frame and do not
//! disturb the connection or the rest of the batch.
//!
//! [`NetServerHandle::shutdown`] nudges the reactor through its wakeup
//! fd: the listener closes, idle connections close, connections with a
//! dispatched batch or a partially-written response drain first, and
//! every thread is joined before `shutdown` returns.
//!
//! ## Thread-per-connection fallback
//!
//! Off unix, when the reactor cannot start, or when `EXACLIM_REACTOR=0`
//! / [`NetConfig::reactor`]` = Some(false)` pins it, the server runs the
//! original thread-per-connection loop: an accept thread admits at most
//! [`NetConfig::max_connections`] concurrent connections (one
//! [`exaclim_runtime::sync::Semaphore`] permit each — a flood queues in
//! the listener backlog) and each connection gets one blocking handler
//! thread. The same idle deadline applies (enforced via socket read
//! timeouts), a handler-spawn failure rejects that connection gracefully
//! ([`NetStats::rejected`]) instead of killing the listener, and the
//! wire behavior is bit-identical to the event-driven path.
//!
//! ## Example
//!
//! ```
//! use exaclim_serve::net::{Client, NetConfig, NetServer};
//! use exaclim_serve::{Catalog, Request, Response, ServeConfig, Server, SliceRequest};
//! use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
//! use std::io::Cursor;
//! use std::sync::Arc;
//!
//! // An in-memory archive behind an in-process server…
//! let data: Vec<f64> = (0..4 * 12).map(f64::from).collect();
//! let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
//! w.add_field("t2m", Codec::Raw64, FieldMeta::default(), 4, 5, &data).unwrap();
//! let (cursor, _) = w.finish().unwrap();
//! let mut catalog = Catalog::new();
//! catalog.open_archive_bytes("era5", cursor.into_inner()).unwrap();
//! let server = Arc::new(Server::new(catalog, ServeConfig::default()));
//!
//! // …served over loopback.
//! let handle = NetServer::bind("127.0.0.1:0", server, NetConfig::default())
//!     .unwrap()
//!     .spawn();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let responses = client
//!     .batch(&[Request::Slice(SliceRequest {
//!         archive: "era5".to_string(),
//!         member: "t2m".to_string(),
//!         range: 3..7,
//!     })])
//!     .unwrap();
//! let Ok(Response::Slice(slice)) = &responses[0] else { panic!() };
//! assert_eq!(slice.values, data[3 * 4..7 * 4]);
//! drop(client);
//! handle.shutdown();
//! ```

use crate::error::{ServeError, WireError};
use crate::product::{ProductData, ProductDescriptor, ScenarioSpec};
use crate::router::Router;
use crate::server::{Request, Response, ServeBackend, ServeStats, Server};
use crate::wire::{self, FrameKind, HEADER_LEN};
use exaclim_runtime::sync::Semaphore;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum concurrently open connections; further clients queue in
    /// the listener backlog until a slot frees up. On the event-driven
    /// path a connection costs a registration, not a thread, so this is
    /// cheap to raise far beyond the old thread-per-connection default.
    pub max_connections: usize,
    /// Reap a connection that goes this long without completing a frame
    /// (while idle or dribbling — slowloris) or without draining any
    /// response bytes (dead peer). `None` disables reaping. Connections
    /// whose batch is still executing are never reaped.
    pub idle_timeout: Option<Duration>,
    /// Dispatch workers that execute decoded batches on the event-driven
    /// path (each batch still fans out over the shared worker pool).
    /// `0` sizes automatically from the pool's thread count.
    pub dispatch_threads: usize,
    /// Force the event-driven reactor path on (`Some(true)`) or off
    /// (`Some(false)`); `None` follows the platform and the
    /// `EXACLIM_REACTOR` escape hatch. Unsupported targets always take
    /// the thread-per-connection fallback.
    pub reactor: Option<bool>,
    /// Payload bytes per streamed response fragment. Responses larger
    /// than this go to version-3 peers as a sequence of CRC-checked
    /// stream frames instead of one monolithic frame, which is what
    /// bounds per-connection server memory; `0` disables streaming
    /// (every response is a single frame, as in wire version 2).
    pub stream_chunk_bytes: usize,
    /// Overload protection (event-driven path): when this many batches
    /// are already queued for the dispatch workers, new request frames
    /// are **shed** — answered immediately with one retryable
    /// [`ServeError::Overloaded`] per request instead of joining a queue
    /// they would time out in. The connection stays open; a client with
    /// a [`RetryPolicy`] backs off and resubmits. `0` disables shedding.
    pub max_dispatch_backlog: usize,
    /// Backoff hint carried in shed responses'
    /// [`ServeError::Overloaded::retry_after_ms`].
    pub shed_retry_after_ms: u32,
}

impl Default for NetConfig {
    /// 4096 connections, 60 s idle deadline, auto-sized dispatch,
    /// platform-default reactor policy, 256 KiB stream fragments,
    /// shedding past 1024 queued batches with a 25 ms retry hint.
    fn default() -> Self {
        Self {
            max_connections: 4096,
            idle_timeout: Some(Duration::from_secs(60)),
            dispatch_threads: 0,
            reactor: None,
            stream_chunk_bytes: 256 << 10,
            max_dispatch_backlog: 1024,
            shed_retry_after_ms: 25,
        }
    }
}

/// Point-in-time transport counters of a [`NetServer`] (see
/// [`NetServerHandle::net_stats`]). Complements [`ServeStats`], which
/// counts requests; these count connections, frames, and bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections admitted over the server's lifetime.
    pub connections: u64,
    /// Connections open right now (gauge).
    pub open_connections: u64,
    /// High-water mark of concurrently open connections.
    pub peak_connections: u64,
    /// Request frames successfully read and decoded.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Bytes received (headers + payloads of well-formed frames).
    pub bytes_in: u64,
    /// Bytes sent (headers + payloads).
    pub bytes_out: u64,
    /// Requests decoded out of request frames.
    pub requests: u64,
    /// Transport-level failures observed (malformed frames, socket
    /// errors); each also closed its connection.
    pub wire_errors: u64,
    /// Cross-thread reactor wakeups consumed (batch completions and
    /// shutdown nudges delivered through the wakeup fd).
    pub reactor_wakeups: u64,
    /// Connections reaped by the [`NetConfig::idle_timeout`] deadline
    /// (idle keep-alives, half-open peers, slowloris dribblers).
    pub reaped_idle: u64,
    /// Connections accepted but rejected before service (fd or thread
    /// exhaustion); the accept loop survives and keeps serving.
    pub rejected: u64,
    /// Responses that left as a sequence of stream fragments instead of
    /// one monolithic frame (see [`NetConfig::stream_chunk_bytes`]).
    pub streamed_responses: u64,
    /// Stream fragments written across all streamed responses.
    pub stream_frames_out: u64,
    /// High-water mark of bytes a single connection *owned* while a
    /// response drained: frame header + copied metadata, excluding
    /// shared chunk-cache references. The streaming wire path bounds
    /// this by roughly one stream fragment regardless of response size.
    pub peak_conn_buffered_bytes: u64,
    /// Histogram of frames per completed response, bucketed 1, 2, 3–4,
    /// 5–8, 9–16, 17–32, 33–64, 65+.
    pub frames_per_response: [u64; 8],
    /// Requests shed by overload protection: answered
    /// [`ServeError::Overloaded`] because the dispatch backlog was over
    /// [`NetConfig::max_dispatch_backlog`] when their frame arrived.
    pub shed: u64,
    /// Faults injected process-wide since start
    /// ([`exaclim_runtime::faults::injected`]); zero unless a fault plan
    /// is armed. Snapshotted here so chaos harnesses can assert the
    /// schedule actually fired from the same place they read transport
    /// counters.
    pub faults_injected: u64,
}

#[derive(Default)]
struct NetStatCells {
    connections: AtomicU64,
    open_connections: AtomicU64,
    peak_connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    wire_errors: AtomicU64,
    reactor_wakeups: AtomicU64,
    reaped_idle: AtomicU64,
    rejected: AtomicU64,
    streamed_responses: AtomicU64,
    stream_frames_out: AtomicU64,
    peak_conn_buffered_bytes: AtomicU64,
    frames_per_response: [AtomicU64; 8],
    shed: AtomicU64,
}

/// Histogram bucket of a frames-per-response count: 1, 2, 3–4, 5–8,
/// 9–16, 17–32, 33–64, 65+.
fn frames_bucket(frames: u32) -> usize {
    match frames {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        33..=64 => 6,
        _ => 7,
    }
}

impl NetStatCells {
    fn snapshot(&self) -> NetStats {
        NetStats {
            connections: self.connections.load(Ordering::Relaxed),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            streamed_responses: self.streamed_responses.load(Ordering::Relaxed),
            stream_frames_out: self.stream_frames_out.load(Ordering::Relaxed),
            peak_conn_buffered_bytes: self.peak_conn_buffered_bytes.load(Ordering::Relaxed),
            frames_per_response: std::array::from_fn(|i| {
                self.frames_per_response[i].load(Ordering::Relaxed)
            }),
            shed: self.shed.load(Ordering::Relaxed),
            faults_injected: exaclim_runtime::faults::injected(),
        }
    }

    /// One response fully written: bucket its frame count, and when it
    /// streamed, count the response and its fragments.
    fn response_written(&self, frames: u32, streamed: bool) {
        self.frames_per_response[frames_bucket(frames)].fetch_add(1, Ordering::Relaxed);
        if streamed {
            self.streamed_responses.fetch_add(1, Ordering::Relaxed);
            self.stream_frames_out
                .fetch_add(u64::from(frames), Ordering::Relaxed);
        }
    }

    /// Raise the per-connection owned-bytes high-water mark.
    fn note_conn_buffered(&self, owned: usize) {
        self.peak_conn_buffered_bytes
            .fetch_max(owned as u64, Ordering::Relaxed);
    }

    /// One connection admitted: bump the gauge and the high-water mark.
    fn conn_opened(&self) {
        let now = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    /// One connection closed: drop the gauge.
    fn conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// State shared between the serving threads (reactor + dispatch workers,
/// or accept loop + connection handlers) and the [`NetServerHandle`].
struct NetShared {
    /// What decoded batches execute on: an in-process [`Server`]
    /// ([`NetServer::bind`]) or a [`Router`] scatter-gathering over
    /// backend shards ([`NetServer::bind_router`]).
    backend: Arc<dyn ServeBackend>,
    /// The in-process server when this front end is server-backed
    /// (`None` behind [`NetServer::bind_router`]).
    server: Option<Arc<Server>>,
    stats: NetStatCells,
    /// Set when shutdown begins. The event-driven path observes it on
    /// the next wakeup; the threaded path sets and re-checks it under
    /// the `open_conns` lock so no connection slips past the drain.
    shutdown: AtomicBool,
    /// Threaded path only: one `(token, clone)` per open connection, so
    /// shutdown can unblock handlers parked in a read. Tokens are
    /// accept-loop sequence numbers: handlers deregister by token, never
    /// by address (peer addresses can be unreadable on already-reset
    /// sockets).
    open_conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl NetShared {
    /// Drop one connection's registry entry when its handler exits.
    fn forget_conn(&self, token: u64) {
        let mut conns = self.open_conns.lock();
        if let Some(i) = conns.iter().position(|(t, _)| *t == token) {
            conns.swap_remove(i);
        }
    }
}

/// A bound-but-not-yet-serving network front end over a [`Server`].
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<NetShared>,
    config: NetConfig,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("max_connections", &self.config.max_connections)
            .finish()
    }
}

impl NetServer {
    /// Bind a listener on `addr` (use port 0 for an ephemeral port) over
    /// an existing in-process server.
    pub fn bind(
        addr: impl ToSocketAddrs,
        server: Arc<Server>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        Self::bind_backend(
            addr,
            Arc::clone(&server) as Arc<dyn ServeBackend>,
            Some(server),
            config,
        )
    }

    /// Bind a listener over a [`Router`]: the same ECN1 wire front end,
    /// but every decoded batch scatter-gathers over the router's backend
    /// shards instead of executing in-process. Clients cannot tell the
    /// difference — responses are bit-identical to a single server over
    /// the same catalog. [`NetServerHandle::server`] has no in-process
    /// server to return for a router-backed front end and panics;
    /// inspect the router you passed in instead.
    pub fn bind_router(
        addr: impl ToSocketAddrs,
        router: Arc<Router>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        Self::bind_backend(addr, router, None, config)
    }

    fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ServeBackend>,
        server: Option<Arc<Server>>,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(NetShared {
                backend,
                server,
                stats: NetStatCells::default(),
                shutdown: AtomicBool::new(false),
                open_conns: Mutex::new(Vec::new()),
            }),
            config,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start serving and return the controlling handle. Prefers the
    /// event-driven reactor path (see the module docs); falls back to
    /// thread-per-connection off unix, under `EXACLIM_REACTOR=0`, when
    /// [`NetConfig::reactor`] pins it, or if the reactor cannot start.
    pub fn spawn(self) -> NetServerHandle {
        #[cfg(unix)]
        {
            let want = self
                .config
                .reactor
                .unwrap_or_else(exaclim_runtime::reactor::reactor_enabled);
            if want {
                if let Ok(reactor) = exaclim_runtime::reactor::Reactor::new() {
                    if self.listener.set_nonblocking(true).is_ok() {
                        return event::spawn_event(self, reactor);
                    }
                }
            }
        }
        self.spawn_threaded()
    }

    /// The thread-per-connection fallback: a dedicated accept thread,
    /// one handler thread per admitted connection.
    fn spawn_threaded(self) -> NetServerHandle {
        // The listener may have been flipped nonblocking while probing
        // the reactor path; the blocking accept loop needs it blocking.
        let _ = self.listener.set_nonblocking(false);
        let shared = Arc::clone(&self.shared);
        let addr = self.addr;
        let accept_thread = std::thread::Builder::new()
            .name("exaclim-net-accept".to_string())
            .spawn(move || accept_loop(self.listener, self.shared, self.config))
            .expect("spawn accept thread");
        NetServerHandle {
            addr,
            shared,
            threads: vec![accept_thread],
            #[cfg(unix)]
            waker: None,
        }
    }
}

/// Controlling handle of a running [`NetServer`]: address, transport
/// stats, graceful shutdown. Dropping the handle shuts the server down.
pub struct NetServerHandle {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// `Some` on the event-driven path: shutdown nudges the reactor
    /// through its wakeup fd instead of draining a registry.
    #[cfg(unix)]
    waker: Option<exaclim_runtime::reactor::Waker>,
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl NetServerHandle {
    /// Address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process server behind the wire.
    ///
    /// # Panics
    /// For a router-backed front end ([`NetServer::bind_router`]) there
    /// is no in-process server; inspect the [`Router`] instead.
    pub fn server(&self) -> &Arc<Server> {
        self.shared
            .server
            .as_ref()
            .expect("router-backed NetServer has no in-process Server")
    }

    /// Current transport counters.
    pub fn net_stats(&self) -> NetStats {
        self.shared.stats.snapshot()
    }

    /// Stop accepting, drain every open connection, and join all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let threads = std::mem::take(&mut self.threads);
        if threads.is_empty() {
            return;
        }
        #[cfg(unix)]
        if let Some(waker) = self.waker.take() {
            // Event-driven path: flag, nudge the parked reactor through
            // the wakeup fd, and join. The reactor closes the listener,
            // closes idle connections, lets dispatched batches and
            // half-written responses drain, then stops the dispatch
            // workers.
            self.shared.shutdown.store(true, Ordering::SeqCst);
            waker.wake();
            for t in threads {
                let _ = t.join();
            }
            return;
        }
        // Threaded path. Flag and drain under the registry lock: the
        // accept loop registers new connections under the same lock
        // after re-checking the flag, so every connection is either
        // drained here or closed by the loop itself — none can slip
        // between flag and drain and leave shutdown joining a handler
        // nobody will ever unblock.
        let drained: Vec<TcpStream> = {
            let mut conns = self.shared.open_conns.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            conns.drain(..).map(|(_, stream)| stream).collect()
        };
        // Unblock handlers parked in a frame read: their next read
        // returns EOF and the handler exits, releasing its permit.
        for conn in drained {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the accept call itself with a wake-up connection. A
        // listener bound to an unspecified address (0.0.0.0 / ::) is not
        // connectable everywhere; aim the wake-up at loopback instead.
        let wake = if self.addr.ip().is_unspecified() {
            let ip: IpAddr = match self.addr {
                SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(ip, self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect(wake);
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------------
// Event-driven path: nonblocking frame state machines over the reactor
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod event {
    use super::*;
    use exaclim_runtime::reactor::{Interest, Mode, Reactor, Token, Waker};
    use exaclim_store::crc32;
    use parking_lot::Condvar;
    use std::collections::HashMap;
    use std::io::ErrorKind;
    use std::os::unix::io::AsRawFd;

    /// The listener's reactor token; connections count up from 1.
    const LISTENER: Token = Token(0);

    /// A decoded request batch on its way to a dispatch worker.
    struct Job {
        token: u64,
        id: u64,
        /// Wire version of the request frame; replies mirror it, and it
        /// decides whether the response may stream.
        version: u8,
        requests: Vec<Request>,
        /// When the request frame was parsed off the socket. Per-request
        /// deadline budgets ([`Request::WithDeadline`]) count from here,
        /// so queue time under backlog spends the budget.
        received: Instant,
    }

    /// A finished batch on its way back to the reactor: the encoded
    /// response *body* — segments referencing chunk-cache buffers, not a
    /// materialized frame. The reactor cuts it into wire frames on the
    /// connection's write-drain.
    struct Completion {
        token: u64,
        id: u64,
        version: u8,
        body: wire::ResponseBody,
    }

    /// The bridge between the reactor thread and the dispatch workers:
    /// jobs flow out through a condvar queue, completions flow back
    /// through a mutexed vector plus a wakeup-fd nudge.
    struct Dispatch {
        jobs: Mutex<(VecDeque<Job>, bool)>,
        jobs_cv: Condvar,
        completions: Mutex<Vec<Completion>>,
        waker: Waker,
        shared: Arc<NetShared>,
    }

    impl Dispatch {
        fn push(&self, job: Job) {
            self.jobs.lock().0.push_back(job);
            self.jobs_cv.notify_one();
        }

        fn close(&self) {
            self.jobs.lock().1 = true;
            self.jobs_cv.notify_all();
        }
    }

    /// Dispatch worker: pop a job, run the batch through the in-process
    /// server (fanning out over the shared worker pool), encode the
    /// response body — slice values as chunk-cache references, zero
    /// copies — hand it back, nudge the reactor.
    fn dispatch_worker(d: &Dispatch) {
        loop {
            let job = {
                let mut q = d.jobs.lock();
                loop {
                    if let Some(job) = q.0.pop_front() {
                        break job;
                    }
                    if q.1 {
                        return;
                    }
                    d.jobs_cv.wait(&mut q);
                }
            };
            // Fault site `dispatch`, and panic containment: a panic on
            // this worker (injected or organic — a poisoned archive, a
            // bug in a product kernel) must not strand the requester or
            // kill the worker. Each request on the batch draws a typed
            // retryable [`ServeError::Internal`] instead, and the worker
            // survives to take the next job.
            let received = job.received;
            let requests = &job.requests;
            let backend = &d.shared.backend;
            let replies = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(action) = exaclim_runtime::faults::check("dispatch") {
                    use exaclim_runtime::FaultAction;
                    match action {
                        FaultAction::Delay(dur) | FaultAction::Stall(dur) => {
                            std::thread::sleep(dur)
                        }
                        FaultAction::Panic => panic!("injected dispatch fault"),
                        _ => {}
                    }
                }
                backend.batch_replies_from(requests, received)
            }))
            .unwrap_or_else(|_| {
                job.requests
                    .iter()
                    .map(|_| {
                        crate::server::Reply::Full(Err(ServeError::Internal(
                            "request execution panicked".to_string(),
                        )))
                    })
                    .collect()
            });
            let body = wire::encode_reply_batch(replies);
            d.completions.lock().push(Completion {
                token: job.token,
                id: job.id,
                version: job.version,
                body,
            });
            d.waker.wake();
        }
    }

    /// Where a connection's state machine stands.
    enum Phase {
        /// Accumulating request bytes (header-scan / payload-accumulate).
        Reading,
        /// A decoded batch is executing on a dispatch worker; read
        /// interest is off (one batch in flight per connection).
        Dispatched,
    }

    /// A response (or error) mid-drain: a [`wire::FrameStream`] cutting
    /// the body into frames on demand, plus the frame currently leaving.
    /// Only `cur`'s header (and small copied metadata runs) is owned;
    /// payload bytes stay in the shared chunk cache until `writev` reads
    /// them, which is what bounds per-connection memory.
    struct Outgoing {
        stream: wire::FrameStream,
        /// The staged frame and how many of its bytes have left.
        cur: Option<(wire::OutFrame, usize)>,
        /// Response frames count toward `frames_out`/`bytes_out`;
        /// error frames do not (blocking-path parity).
        is_response: bool,
    }

    /// Frames drained per connection per readiness round. A fat streamed
    /// response yields the reactor back after this many frames so its
    /// neighbours get their turn (level-triggered readiness re-announces
    /// the still-writable socket next round).
    const FRAMES_PER_ROUND: u32 = 8;

    /// One connection's nonblocking state machine.
    struct Conn {
        stream: TcpStream,
        /// Unparsed request bytes (at most one frame plus whatever the
        /// socket delivered alongside it; read interest is off while a
        /// batch executes or a response drains).
        buf: Vec<u8>,
        phase: Phase,
        write: Option<Outgoing>,
        /// Close once the pending write drains (error frames, shutdown).
        close_after: bool,
        /// The peer's write side closed; whatever is buffered is all
        /// there will ever be.
        eof: bool,
        interest: Interest,
        /// Wire version of the peer's last request frame; replies mirror
        /// it. Starts at our own version until the first frame arrives.
        peer_version: u8,
        /// Last time this connection completed a frame in or pushed
        /// response bytes out. The idle wheel is re-armed lazily from
        /// this on expiry instead of on every frame (hot connections
        /// would otherwise churn the deadline structure per frame).
        last_activity: Instant,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Self {
            Self {
                stream,
                buf: Vec::new(),
                phase: Phase::Reading,
                write: None,
                close_after: false,
                eof: false,
                interest: Interest::READABLE,
                peer_version: wire::VERSION,
                last_activity: Instant::now(),
            }
        }
    }

    /// What the frame parser decided about the head of `Conn::buf`.
    enum Parsed {
        /// Not enough bytes yet; keep reading.
        NeedMore,
        /// The peer closed cleanly between frames.
        CleanClose,
        /// Transport-level violation: answer with an error frame carrying
        /// this id and message, then close.
        Fail { id: u64, msg: String },
        /// A complete, valid request frame of `total` bytes carrying
        /// this batch.
        Request {
            id: u64,
            version: u8,
            total: usize,
            requests: Vec<Request>,
        },
    }

    /// The reactor thread's whole world.
    struct EventLoop {
        reactor: Reactor,
        listener: Option<TcpListener>,
        accepting: bool,
        conns: HashMap<u64, Conn>,
        next_token: u64,
        scratch: Vec<u8>,
        draining: bool,
        dispatch: Arc<Dispatch>,
        shared: Arc<NetShared>,
        config: NetConfig,
    }

    /// Launch the event-driven server: dispatch workers plus the reactor
    /// thread, all joined by [`NetServerHandle::shutdown`].
    pub(super) fn spawn_event(server: NetServer, reactor: Reactor) -> NetServerHandle {
        let NetServer {
            listener,
            addr,
            shared,
            config,
        } = server;
        let waker = reactor.waker();
        let dispatch = Arc::new(Dispatch {
            jobs: Mutex::new((VecDeque::new(), false)),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker: reactor.waker(),
            shared: Arc::clone(&shared),
        });
        let workers = if config.dispatch_threads == 0 {
            exaclim_runtime::pool::global().threads().clamp(1, 8)
        } else {
            config.dispatch_threads
        };
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let d = Arc::clone(&dispatch);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("exaclim-net-dispatch-{i}"))
                    .spawn(move || dispatch_worker(&d))
                    .expect("spawn dispatch worker"),
            );
        }
        let loop_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("exaclim-net-reactor".to_string())
                .spawn(move || {
                    let mut el = EventLoop {
                        reactor,
                        listener: Some(listener),
                        accepting: false,
                        conns: HashMap::new(),
                        next_token: 1,
                        scratch: vec![0u8; 64 * 1024],
                        draining: false,
                        dispatch,
                        shared: loop_shared,
                        config,
                    };
                    el.run();
                    // No connection can produce work anymore: release the
                    // dispatch workers so the handle can join them.
                    el.dispatch.close();
                })
                .expect("spawn reactor thread"),
        );
        NetServerHandle {
            addr,
            shared,
            threads,
            waker: Some(waker),
        }
    }

    impl EventLoop {
        fn run(&mut self) {
            if let Some(listener) = &self.listener {
                if self
                    .reactor
                    .register(
                        listener.as_raw_fd(),
                        LISTENER,
                        Interest::READABLE,
                        Mode::Level,
                    )
                    .is_err()
                {
                    return;
                }
                self.accepting = true;
            }
            let mut events = Vec::new();
            let mut expired = Vec::new();
            loop {
                let woken = match self.reactor.poll(&mut events, &mut expired, None) {
                    Ok(woken) => woken,
                    Err(_) => {
                        // EBADF and friends are unrecoverable program
                        // bugs; anything transient deserves a breather,
                        // not a hot spin.
                        std::thread::sleep(Duration::from_millis(1));
                        false
                    }
                };
                if woken {
                    self.shared
                        .stats
                        .reactor_wakeups
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Completions first: they free connections back into
                // write-drain before this round's readiness is handled.
                let done: Vec<Completion> = std::mem::take(&mut *self.dispatch.completions.lock());
                for completion in done {
                    self.complete(completion);
                }
                if self.shared.shutdown.load(Ordering::SeqCst) && !self.draining {
                    self.begin_drain();
                }
                for ev in events.drain(..) {
                    if ev.token == LISTENER {
                        self.accept_burst();
                    } else {
                        self.conn_event(ev);
                    }
                }
                for token in expired.drain(..) {
                    self.expire(token.0);
                }
                self.resume_accepting_if_room();
                if self.draining && self.conns.is_empty() {
                    return;
                }
            }
        }

        /// A dispatch worker finished a batch for `token`: stage the body
        /// as a frame stream on the connection's write-drain.
        fn complete(&mut self, completion: Completion) {
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                return; // connection died while its batch executed
            };
            match wire::FrameStream::response(
                completion.body,
                completion.id,
                completion.version,
                self.config.stream_chunk_bytes,
            ) {
                Ok(stream) => {
                    conn.phase = Phase::Reading;
                    conn.write = Some(Outgoing {
                        stream,
                        cur: None,
                        is_response: true,
                    });
                    // Optimistic drain: the socket is almost always
                    // writable, so most responses leave without waiting
                    // for a readiness round trip.
                    self.conn_write(completion.token);
                }
                // Response over the payload cap: close, the same outcome
                // the blocking path's failed encode had.
                Err(_) => self.close_conn(completion.token),
            }
        }

        /// Shutdown observed: stop accepting, close idle connections,
        /// and mark the busy ones to close as soon as they drain.
        fn begin_drain(&mut self) {
            self.draining = true;
            self.pause_accepting();
            // Dropping the listener refuses new connections outright.
            self.listener = None;
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| c.write.is_none() && matches!(c.phase, Phase::Reading))
                .map(|(&t, _)| t)
                .collect();
            for token in idle {
                self.close_conn(token);
            }
            // Busy connections drain (dispatched batch → response write →
            // close). A deadline bounds the drain even when no idle
            // timeout is configured, so a dead peer cannot hang shutdown.
            let drain_deadline =
                Instant::now() + self.config.idle_timeout.unwrap_or(Duration::from_secs(5));
            let busy: Vec<u64> = self.conns.keys().copied().collect();
            for token in busy {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.close_after = true;
                }
                self.reactor.set_deadline(Token(token), drain_deadline);
            }
        }

        fn pause_accepting(&mut self) {
            if self.accepting {
                let _ = self.reactor.deregister(LISTENER);
                self.accepting = false;
            }
        }

        fn resume_accepting_if_room(&mut self) {
            if self.accepting || self.draining || self.conns.len() >= self.config.max_connections {
                return;
            }
            if let Some(listener) = &self.listener {
                if self
                    .reactor
                    .register(
                        listener.as_raw_fd(),
                        LISTENER,
                        Interest::READABLE,
                        Mode::Level,
                    )
                    .is_ok()
                {
                    self.accepting = true;
                }
            }
        }

        /// Accept everything the backlog has, up to the connection cap.
        fn accept_burst(&mut self) {
            loop {
                if self.draining {
                    return;
                }
                if self.conns.len() >= self.config.max_connections {
                    // At capacity: stop listening so a level-triggered
                    // backlog does not spin the loop; the backlog itself
                    // is the admission queue.
                    self.pause_accepting();
                    return;
                }
                let Some(listener) = &self.listener else {
                    return;
                };
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            continue; // dropped → closed
                        }
                        let _ = stream.set_nodelay(true);
                        let token = self.next_token;
                        self.next_token += 1;
                        if self
                            .reactor
                            .register(
                                stream.as_raw_fd(),
                                Token(token),
                                Interest::READABLE,
                                Mode::Level,
                            )
                            .is_err()
                        {
                            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        self.shared
                            .stats
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared.stats.conn_opened();
                        self.conns.insert(token, Conn::new(stream));
                        self.reset_deadline(token);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // fd exhaustion or a reset mid-handshake: the
                        // connection is lost but the listener survives.
                        self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }

        /// Route one readiness event to the connection's state machine.
        fn conn_event(&mut self, ev: exaclim_runtime::reactor::Event) {
            let token = ev.token.0;
            let Some(conn) = self.conns.get(&token) else {
                return; // closed earlier this round
            };
            if ev.error {
                self.shared
                    .stats
                    .wire_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.close_conn(token);
                return;
            }
            if ev.writable && conn.write.is_some() {
                self.conn_write(token);
            }
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.write.is_none() && matches!(conn.phase, Phase::Reading) && !conn.eof {
                if ev.readable || ev.hangup {
                    self.conn_read(token);
                }
            } else if ev.hangup && conn.write.is_none() && matches!(conn.phase, Phase::Reading) {
                // EOF already seen and nothing left to write: done.
                self.close_conn(token);
            }
        }

        /// Drain the socket into the connection's buffer, then parse.
        fn conn_read(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // Fault site `net.read`. ShortRead caps this round at one
            // byte (the parser must already tolerate arbitrary
            // fragmentation — this proves it); Interrupt skips the round
            // as a kernel EINTR would (level-triggered readiness
            // re-announces the socket); Reset fails the connection as a
            // peer reset would. Delays run on the reactor thread — a
            // stalled event loop is exactly the pathology they model.
            let mut read_cap = self.scratch.len();
            if let Some(action) = exaclim_runtime::faults::check("net.read") {
                use exaclim_runtime::FaultAction;
                match action {
                    FaultAction::ShortRead => read_cap = 1,
                    FaultAction::Interrupt => return,
                    FaultAction::Reset => {
                        self.shared
                            .stats
                            .wire_errors
                            .fetch_add(1, Ordering::Relaxed);
                        self.close_conn(token);
                        return;
                    }
                    FaultAction::Delay(dur) | FaultAction::Stall(dur) => std::thread::sleep(dur),
                    _ => {}
                }
            }
            let mut failed = false;
            loop {
                match conn.stream.read(&mut self.scratch[..read_cap]) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&self.scratch[..n]);
                        if read_cap < self.scratch.len() {
                            break; // injected short read: one byte this round
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                // Socket-level read failure (reset mid-frame, say): the
                // blocking path counted it as a wire error and closed.
                self.shared
                    .stats
                    .wire_errors
                    .fetch_add(1, Ordering::Relaxed);
                self.close_conn(token);
                return;
            }
            self.advance(token);
        }

        /// Run the frame parser over the head of the buffer and act on
        /// the outcome: dispatch, reject, wait, or close.
        fn advance(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.write.is_some() || matches!(conn.phase, Phase::Dispatched) {
                return; // back-pressure: one batch/response at a time
            }
            match parse_head(conn, &self.shared.stats) {
                Parsed::NeedMore => self.sync_interest(token),
                Parsed::CleanClose => self.close_conn(token),
                Parsed::Fail { id, msg } => self.fail_conn(token, id, &msg),
                Parsed::Request {
                    id,
                    version,
                    total,
                    requests,
                } => {
                    self.shared
                        .stats
                        .requests
                        .fetch_add(requests.len() as u64, Ordering::Relaxed);
                    let conn = self.conns.get_mut(&token).expect("conn just parsed");
                    conn.buf.drain(..total);
                    conn.peer_version = version;
                    // A complete frame arrived: this peer is live.
                    conn.last_activity = Instant::now();
                    // Overload protection: past the dispatch backlog
                    // threshold, shed instead of queueing doomed work. A
                    // shed batch draws a well-formed response frame with
                    // one retryable `Overloaded` per request — cheaper
                    // than executing, and the connection stays open for
                    // the retry.
                    let backlog = self.config.max_dispatch_backlog;
                    if backlog > 0 && self.dispatch.jobs.lock().0.len() >= backlog {
                        self.shed(token, id, version, requests.len());
                        return;
                    }
                    conn.phase = Phase::Dispatched;
                    self.sync_interest(token);
                    self.dispatch.push(Job {
                        token,
                        id,
                        version,
                        requests,
                        received: Instant::now(),
                    });
                }
            }
        }

        /// Answer a shed batch without dispatching: one retryable
        /// [`ServeError::Overloaded`] per request, staged on the
        /// write-drain like any other response. The connection stays
        /// open — shedding is back-pressure, not punishment.
        fn shed(&mut self, token: u64, id: u64, version: u8, n_requests: usize) {
            self.shared
                .stats
                .shed
                .fetch_add(n_requests as u64, Ordering::Relaxed);
            let retry_after_ms = self.config.shed_retry_after_ms;
            let replies: Vec<crate::server::Reply> = (0..n_requests)
                .map(|_| crate::server::Reply::Full(Err(ServeError::Overloaded { retry_after_ms })))
                .collect();
            let body = wire::encode_reply_batch(replies);
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match wire::FrameStream::response(body, id, version, self.config.stream_chunk_bytes) {
                Ok(stream) => {
                    conn.write = Some(Outgoing {
                        stream,
                        cur: None,
                        is_response: true,
                    });
                    self.conn_write(token);
                }
                Err(_) => self.close_conn(token),
            }
        }

        /// Transport-level violation: count it, answer best-effort with
        /// an error frame, and close once (if) it drains.
        fn fail_conn(&mut self, token: u64, id: u64, msg: &str) {
            self.shared
                .stats
                .wire_errors
                .fetch_add(1, Ordering::Relaxed);
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let body = wire::ResponseBody::from_payload(wire::encode_error_payload(msg));
            match wire::FrameStream::single(FrameKind::Error, conn.peer_version, id, body) {
                Ok(stream) => {
                    conn.close_after = true;
                    conn.write = Some(Outgoing {
                        stream,
                        cur: None,
                        is_response: false,
                    });
                    self.conn_write(token);
                }
                Err(_) => self.close_conn(token),
            }
        }

        /// Drain pending response frames into the socket: cut frames on
        /// demand from the connection's [`wire::FrameStream`] and push
        /// each out with gathered `writev` straight from the shared
        /// chunk buffers, up to [`FRAMES_PER_ROUND`] frames per call so
        /// one fat streamed response cannot starve its neighbours
        /// (level-triggered readiness resumes it next round).
        fn conn_write(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.write.is_none() {
                return;
            }
            // Fault site `net.write`. Reset fails the connection as a
            // peer reset mid-response would (the client sees a truncated
            // stream); Interrupt yields the round; delays stall the
            // drain. Unrealizable actions degrade to no-ops.
            if let Some(action) = exaclim_runtime::faults::check("net.write") {
                use exaclim_runtime::FaultAction;
                match action {
                    FaultAction::Reset => {
                        self.close_conn(token);
                        return;
                    }
                    FaultAction::Interrupt => return,
                    FaultAction::Delay(dur) | FaultAction::Stall(dur) => std::thread::sleep(dur),
                    _ => {}
                }
            }
            let mut failed = false;
            let mut progressed = false;
            let mut finished = false;
            let mut round = 0u32;
            'frames: loop {
                let out = conn.write.as_mut().expect("checked above");
                // Stage the next frame when none is mid-drain.
                if out.cur.is_none() {
                    match out.stream.next_frame() {
                        Some(frame) => {
                            self.shared
                                .stats
                                .note_conn_buffered(frame.owned_len(out.stream.body()));
                            out.cur = Some((frame, 0));
                        }
                        None => {
                            finished = true;
                            break;
                        }
                    }
                }
                let Outgoing {
                    stream,
                    cur,
                    is_response,
                } = out;
                let (frame, written) = cur.as_mut().expect("staged above");
                let total = frame.total_len();
                let mut bufs: Vec<std::io::IoSlice<'_>> = Vec::new();
                while *written < total {
                    bufs.clear();
                    frame.remaining_slices(stream.body(), *written, &mut bufs, wire::MAX_WRITE_IOV);
                    match conn.stream.write_vectored(&bufs) {
                        Ok(0) => {
                            failed = true;
                            break 'frames;
                        }
                        Ok(n) => {
                            *written += n;
                            progressed = true;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break 'frames,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            failed = true;
                            break 'frames;
                        }
                    }
                }
                // One frame fully out: count it, drop its staging, move on.
                if *is_response {
                    self.shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .stats
                        .bytes_out
                        .fetch_add(total as u64, Ordering::Relaxed);
                }
                let was_last = frame.last;
                *cur = None;
                if was_last {
                    finished = true;
                    break;
                }
                // Fault site `net.write.frame`: between stream
                // fragments, where a stall holds the peer mid-reassembly
                // and a reset leaves it with a truncated stream.
                if let Some(action) = exaclim_runtime::faults::check("net.write.frame") {
                    use exaclim_runtime::FaultAction;
                    match action {
                        FaultAction::Delay(d) | FaultAction::Stall(d) => std::thread::sleep(d),
                        FaultAction::Reset => {
                            failed = true;
                            break 'frames;
                        }
                        _ => {}
                    }
                }
                round += 1;
                if round >= FRAMES_PER_ROUND {
                    break; // yield to the other connections this round
                }
            }
            if failed {
                // Write failures closed the blocking path without a wire
                // error; keep the same books here.
                self.close_conn(token);
                return;
            }
            if finished {
                self.finish_write(token);
                return;
            }
            if progressed {
                // The peer is draining, just slowly — not idle.
                conn.last_activity = Instant::now();
            }
            self.sync_interest(token);
        }

        /// A whole response (or error frame) fully left the socket:
        /// bucket its frame count, close if it was a goodbye, otherwise
        /// re-parse whatever the client pipelined.
        fn finish_write(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let out = conn.write.take().expect("finish_write without a write");
            if out.is_response {
                self.shared
                    .stats
                    .response_written(out.stream.frames_emitted(), out.stream.is_streamed());
            }
            if conn.close_after {
                self.close_conn(token);
                return;
            }
            conn.last_activity = Instant::now();
            // Level-triggered readiness will not re-announce bytes we
            // already buffered: pipelined frames must be re-parsed now,
            // not when the socket next stirs.
            self.advance(token);
        }

        /// Keep the reactor's armed interest in sync with the state
        /// machine: write-drain → writable, dispatched → muted,
        /// reading → readable.
        fn sync_interest(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let want = if conn.write.is_some() {
                Interest::WRITABLE
            } else if matches!(conn.phase, Phase::Dispatched) {
                Interest::NONE
            } else {
                Interest::READABLE
            };
            if conn.interest != want {
                conn.interest = want;
                let _ = self.reactor.modify(Token(token), want);
            }
        }

        /// Arm the idle deadline, when one is configured. Called once at
        /// accept (and when a deadline needs explicit re-arming); hot
        /// connections only touch `Conn::last_activity` per frame, and
        /// [`EventLoop::expire`] re-arms lazily from that — one wheel
        /// operation per idle period instead of one per frame.
        fn reset_deadline(&mut self, token: u64) {
            if let Some(idle) = self.config.idle_timeout {
                self.reactor
                    .set_deadline(Token(token), Instant::now() + idle);
            }
        }

        /// A deadline fired: reap the connection unless its batch is
        /// still executing (compute time is not idle time) or it was in
        /// fact recently active — deadlines are armed lazily, so the
        /// wheel entry of a busy connection is usually stale; re-arm it
        /// at the true idle deadline instead.
        fn expire(&mut self, token: u64) {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if matches!(conn.phase, Phase::Dispatched) {
                self.reset_deadline(token);
                return;
            }
            // While draining for shutdown the deadline set by
            // [`EventLoop::begin_drain`] is absolute: a peer draining
            // its half-written response slowly gets exactly that grace,
            // then a hard close (the client sees a typed truncated
            // stream) — progress must not extend shutdown forever.
            if !self.draining {
                if let Some(idle) = self.config.idle_timeout {
                    let due = conn.last_activity + idle;
                    if due > Instant::now() {
                        self.reactor.set_deadline(Token(token), due);
                        return;
                    }
                }
            }
            self.shared
                .stats
                .reaped_idle
                .fetch_add(1, Ordering::Relaxed);
            self.close_conn(token);
        }

        fn close_conn(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.reactor.deregister(Token(token));
                let _ = conn.stream.shutdown(Shutdown::Both);
                self.shared.stats.conn_closed();
            }
        }
    }

    /// Pure frame parser over the head of a connection's buffer. Splits
    /// cleanly from the event loop so the counting/bookkeeping above
    /// stays free of byte-level detail. Counts `frames_in`/`bytes_in`
    /// itself (on complete, checksum-valid request frames), matching the
    /// blocking path's `read_frame` bookkeeping exactly.
    fn parse_head(conn: &mut Conn, stats: &NetStatCells) -> Parsed {
        if conn.buf.len() < HEADER_LEN {
            return if conn.eof {
                if conn.buf.is_empty() {
                    Parsed::CleanClose
                } else {
                    Parsed::Fail {
                        id: 0,
                        msg: WireError::Truncated {
                            context: "frame header",
                        }
                        .to_string(),
                    }
                }
            } else {
                Parsed::NeedMore
            };
        }
        let header_bytes: [u8; HEADER_LEN] =
            conn.buf[..HEADER_LEN].try_into().expect("header slice");
        let header = match wire::FrameHeader::decode(&header_bytes) {
            Ok(header) => header,
            Err(e) => {
                return Parsed::Fail {
                    id: 0,
                    msg: e.to_string(),
                }
            }
        };
        let total = HEADER_LEN + header.len as usize;
        if conn.buf.len() < total {
            if conn.eof {
                return Parsed::Fail {
                    id: 0,
                    msg: WireError::Truncated {
                        context: "frame payload",
                    }
                    .to_string(),
                };
            }
            conn.buf.reserve(total - conn.buf.len());
            return Parsed::NeedMore;
        }
        let payload = &conn.buf[HEADER_LEN..total];
        let actual = crc32(payload);
        if actual != header.crc {
            return Parsed::Fail {
                id: 0,
                msg: WireError::ChecksumMismatch {
                    expected: header.crc,
                    actual,
                }
                .to_string(),
            };
        }
        if header.kind != FrameKind::Request {
            return Parsed::Fail {
                id: header.id,
                msg: format!("unexpected frame kind {} from client", header.kind.id()),
            };
        }
        stats.frames_in.fetch_add(1, Ordering::Relaxed);
        stats.bytes_in.fetch_add(total as u64, Ordering::Relaxed);
        match wire::decode_request_batch(payload) {
            Ok(requests) => Parsed::Request {
                id: header.id,
                version: header.version,
                total,
                requests,
            },
            Err(e) => Parsed::Fail {
                id: header.id,
                msg: e.to_string(),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-per-connection fallback
// ---------------------------------------------------------------------------

/// Accept until shutdown; each accepted connection takes a semaphore
/// permit and a handler thread.
fn accept_loop(listener: TcpListener, shared: Arc<NetShared>, config: NetConfig) {
    let admission = Semaphore::new(config.max_connections);
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next_token = 0u64;
    loop {
        // Hold a permit *before* accepting: when all permits are out the
        // loop parks here and the kernel backlog queues new clients —
        // admission back-pressure without a thread per waiter.
        let permit = admission.acquire();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        let token = next_token;
        next_token += 1;
        // Register under the lock that shutdown drains under, re-checking
        // the flag there: either this connection lands in the registry
        // before the drain, or shutdown already ran and we close it here.
        {
            let mut conns = shared.open_conns.lock();
            if shared.shutdown.load(Ordering::SeqCst) {
                drop(conns);
                let _ = stream.shutdown(Shutdown::Both);
                break; // often the wake-up connection from shutdown()
            }
            if let Ok(clone) = stream.try_clone() {
                conns.push((token, clone));
            }
        }
        handlers.retain(|h| !h.is_finished());
        let conn_shared = Arc::clone(&shared);
        let idle_timeout = config.idle_timeout;
        let stream_chunk = config.stream_chunk_bytes;
        let spawned = std::thread::Builder::new()
            .name("exaclim-net-conn".to_string())
            .spawn(move || {
                handle_connection(&conn_shared, stream, token, idle_timeout, stream_chunk);
                drop(permit);
            });
        match spawned {
            Ok(handler) => handlers.push(handler),
            Err(_) => {
                // Thread (or fd) exhaustion: reject this connection —
                // the dropped closure closes the stream and releases the
                // permit — but the accept loop must survive to serve the
                // connections that already got in.
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                shared.forget_conn(token);
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// A [`TcpStream`] reader that enforces an absolute per-frame deadline
/// through socket read timeouts: every read blocks at most until the
/// deadline, so a slowloris peer dribbling one byte per poll still hits
/// the wall. The handler re-arms the deadline after each complete frame.
struct DeadlineStream {
    stream: TcpStream,
    idle_timeout: Option<Duration>,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl DeadlineStream {
    fn new(stream: TcpStream, idle_timeout: Option<Duration>) -> Self {
        let deadline = idle_timeout.map(|d| Instant::now() + d);
        Self {
            stream,
            idle_timeout,
            deadline,
            timed_out: false,
        }
    }

    /// A complete frame arrived: the peer is live, start a fresh window.
    fn rearm(&mut self) {
        self.deadline = self.idle_timeout.map(|d| Instant::now() + d);
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                self.timed_out = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "idle deadline exceeded",
                ));
            }
            let _ = self.stream.set_read_timeout(Some(deadline - now));
        }
        match self.stream.read(buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                self.timed_out = true;
                Err(e)
            }
            other => other,
        }
    }
}

/// Serve one connection until EOF, socket error, idle deadline, or a
/// transport-level protocol violation.
fn handle_connection(
    shared: &NetShared,
    stream: TcpStream,
    token: u64,
    idle_timeout: Option<Duration>,
    stream_chunk: usize,
) {
    // Admission is counted here, not in the accept loop: the handler can
    // finish (and decrement the open-connections gauge) before the accept
    // loop's next instruction runs, so the open/close pair must live on
    // one thread.
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    shared.stats.conn_opened();
    // Frames are explicit flush points; Nagle only adds latency here.
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.forget_conn(token);
            shared.stats.conn_closed();
            return;
        }
    };
    let mut reader = BufReader::new(DeadlineStream::new(reader_stream, idle_timeout));
    // Responses go straight to the socket via a gathered write — one
    // `writev` per frame — so there is no BufWriter (and no flush) on
    // the response path.
    let mut writer = stream;
    let stats = &shared.stats;
    // Error frames mirror the version of the peer's last good frame.
    let mut peer_version = wire::VERSION;
    loop {
        // Fault site `net.read` (threaded realization): delays stall
        // this connection's read; Reset drops the connection as a peer
        // reset would. Short reads and EINTR are absorbed by the
        // blocking `BufReader` below, so those actions degrade to no-ops
        // here — the reactor path realizes them byte-exactly.
        if let Some(action) = exaclim_runtime::faults::check("net.read") {
            use exaclim_runtime::FaultAction;
            match action {
                FaultAction::Delay(dur) | FaultAction::Stall(dur) => std::thread::sleep(dur),
                FaultAction::Reset => {
                    stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                _ => {}
            }
        }
        match wire::read_frame(&mut reader) {
            Ok((header, payload)) if header.kind == FrameKind::Request => {
                stats.frames_in.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes_in
                    .fetch_add((HEADER_LEN + payload.len()) as u64, Ordering::Relaxed);
                reader.get_mut().rearm();
                peer_version = header.version;
                let received = Instant::now();
                match wire::decode_request_batch(&payload) {
                    Ok(requests) => {
                        stats
                            .requests
                            .fetch_add(requests.len() as u64, Ordering::Relaxed);
                        // Same fault site and panic containment as the
                        // reactor's dispatch workers: a panic answers
                        // every request with a typed retryable
                        // `Internal` error and the connection survives.
                        let backend = &shared.backend;
                        let reqs = &requests;
                        let replies =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if let Some(action) = exaclim_runtime::faults::check("dispatch") {
                                    use exaclim_runtime::FaultAction;
                                    match action {
                                        FaultAction::Delay(dur) | FaultAction::Stall(dur) => {
                                            std::thread::sleep(dur)
                                        }
                                        FaultAction::Panic => panic!("injected dispatch fault"),
                                        _ => {}
                                    }
                                }
                                backend.batch_replies_from(reqs, received)
                            }))
                            .unwrap_or_else(|_| {
                                requests
                                    .iter()
                                    .map(|_| {
                                        crate::server::Reply::Full(Err(ServeError::Internal(
                                            "request execution panicked".to_string(),
                                        )))
                                    })
                                    .collect()
                            });
                        let body = wire::encode_reply_batch(replies);
                        let Ok(mut out) = wire::FrameStream::response(
                            body,
                            header.id,
                            header.version,
                            stream_chunk,
                        ) else {
                            break; // response over the payload cap
                        };
                        // Fault site `net.write` (threaded realization).
                        if let Some(action) = exaclim_runtime::faults::check("net.write") {
                            use exaclim_runtime::FaultAction;
                            match action {
                                FaultAction::Delay(dur) | FaultAction::Stall(dur) => {
                                    std::thread::sleep(dur)
                                }
                                FaultAction::Reset => break,
                                _ => {}
                            }
                        }
                        let report = match wire::write_stream(&mut writer, &mut out) {
                            Ok(report) => report,
                            Err(_) => break,
                        };
                        stats
                            .frames_out
                            .fetch_add(u64::from(report.frames), Ordering::Relaxed);
                        stats.bytes_out.fetch_add(report.bytes, Ordering::Relaxed);
                        stats.response_written(report.frames, out.is_streamed());
                        stats.note_conn_buffered(report.owned_peak);
                    }
                    Err(e) => {
                        // The framing was intact but the payload wasn't:
                        // report and close — the stream may be desynced.
                        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_reply(
                            &mut writer,
                            peer_version,
                            FrameKind::Error,
                            header.id,
                            &wire::encode_error_payload(&e.to_string()),
                        );
                        break;
                    }
                }
            }
            Ok((header, _)) => {
                // A client must only send request frames.
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(
                    &mut writer,
                    header.version,
                    FrameKind::Error,
                    header.id,
                    &wire::encode_error_payload(&format!(
                        "unexpected frame kind {} from client",
                        header.kind.id()
                    )),
                );
                break;
            }
            Err(WireError::ConnectionClosed { .. }) => break,
            Err(_) if reader.get_ref().timed_out => {
                // The idle deadline fired mid-wait (or mid-dribble):
                // reaped, not a wire error — the peer sent nothing wrong,
                // it just stopped being worth a thread.
                stats.reaped_idle.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e) => {
                // Bad magic, version mismatch, oversized claim, checksum
                // failure, truncation, socket error: best-effort report,
                // then close.
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_reply(
                    &mut writer,
                    peer_version,
                    FrameKind::Error,
                    0,
                    &wire::encode_error_payload(&e.to_string()),
                );
                break;
            }
        }
    }
    shared.forget_conn(token);
    shared.stats.conn_closed();
}

/// Write one reply frame with a single gathered syscall: header and
/// payload leave in one `writev` instead of two buffered writes plus a
/// flush, so a response never waits on a half-flushed header.
fn write_reply(
    writer: &mut TcpStream,
    version: u8,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    wire::write_frame_vectored_v(writer, version, kind, id, payload)
}

/// Capped exponential backoff with decorrelated jitter and a retry
/// budget — the client half of the resilience layer (see
/// [`ClientConfig::retry`]).
///
/// Each retry draws its delay uniformly from `base_delay ..
/// min(max_delay, 3 × previous_delay)` — "decorrelated jitter", which
/// spreads a thundering herd of retrying clients across time instead of
/// synchronizing them into repeated stampedes. The jitter stream is
/// seeded, so a given client's backoff schedule is reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most retries one operation (a [`Client::batch`] call, one
    /// [`Client::recv`]) may spend before the error is surfaced.
    pub max_retries: u32,
    /// Lower bound of every backoff delay.
    pub base_delay: Duration,
    /// Upper bound of every backoff delay (and of honored
    /// [`ServeError::Overloaded::retry_after_ms`] hints).
    pub max_delay: Duration,
    /// Seed of the jitter stream: same seed ⇒ same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 8 retries, 5 ms base, 1 s cap.
    fn default() -> Self {
        Self {
            max_retries: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_secs(1),
            seed: 0x5EED,
        }
    }
}

/// Connection and resilience knobs of a [`Client`] (see
/// [`Client::connect_with`]).
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Wire version announced in request frames, within
    /// [`crate::wire::MIN_VERSION`]`..=`[`crate::wire::VERSION`].
    /// `0` (the `Default`) means the current [`crate::wire::VERSION`].
    pub version: u8,
    /// Bound on establishing the TCP connection, applied per resolved
    /// address; `None` blocks on the OS default (which against a
    /// dead-but-routable address can be minutes).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout: a server that stops talking mid-frame
    /// surfaces as a retryable [`WireError::Io`] instead of a hang.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout, same rationale as
    /// [`ClientConfig::read_timeout`].
    pub write_timeout: Option<Duration>,
    /// Label this connection's peer in transport errors
    /// ([`WireError::with_peer`]): a router pooling clients to N shards
    /// names each one (`shard-2@127.0.0.1:4042`), so a dead backend is
    /// attributable in logs and tests. `None` (the default) labels with
    /// the first resolved address.
    pub peer: Option<String>,
    /// Self-healing: `Some` arms transport-level reconnect-with-replay
    /// (every serving op is read-only, so replaying in-flight pipelined
    /// requests is safe) and batch-level retry of retryable per-request
    /// errors ([`ServeError::retryable`]), honoring the server's
    /// [`ServeError::Overloaded::retry_after_ms`] hint. `None` (the
    /// default) surfaces every failure immediately — behaviorally
    /// identical to the pre-resilience client.
    pub retry: Option<RetryPolicy>,
}

/// Resilience counters of one [`Client`] (see [`Client::client_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Retries spent: transport-level (reconnect + replay) and
    /// batch-level (retryable per-request errors) combined.
    pub retries: u64,
    /// Reconnect attempts made while self-healing.
    pub reconnects: u64,
}

/// A blocking client over one reused connection.
///
/// [`Client::batch`] is the wire twin of [`Server::handle_batch`]: same
/// request slice in, same `Vec<Result<Response, ServeError>>` out,
/// bit-identical responses. For pipelining, [`Client::send`] and
/// [`Client::recv`] split the round trip: several batches may be in
/// flight on the connection at once, and responses arrive in send order.
///
/// Requests announce [`crate::wire::VERSION`] by default, so large
/// responses arrive as CRC-checked stream fragments which [`Client::recv`]
/// reassembles transparently — the result is bit-identical to the
/// single-frame response a version-2 peer (see
/// [`Client::connect_with_version`]) would get.
///
/// With a [`RetryPolicy`] armed ([`ClientConfig::retry`]) the client
/// **self-heals**: retryable transport failures (resets, truncated
/// streams, socket errors — [`WireError::retryable`]) trigger a
/// reconnect that replays every in-flight batch under fresh frame ids,
/// and retryable per-request errors ([`ServeError::Overloaded`],
/// [`ServeError::Internal`]) make [`Client::batch`] back off and
/// resubmit. Without a policy every failure surfaces immediately.
pub struct Client {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    /// Label stamped onto transport errors ([`ClientConfig::peer`], or
    /// the first resolved address).
    peer: String,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Oldest-first in-flight batches: `(frame id, requests)`. The
    /// requests are retained (when a retry policy is armed) so a
    /// reconnect can replay them verbatim.
    in_flight: VecDeque<(u64, Vec<Request>)>,
    stats: ClientStats,
    /// Jitter stream state (splitmix64 over [`RetryPolicy::seed`]).
    rng: u64,
    /// Previous backoff delay, feeding the decorrelated-jitter window.
    last_delay: Duration,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.peer)
            .field("next_id", &self.next_id)
            .field("in_flight", &self.in_flight.len())
            .field("version", &self.config.version)
            .field("retries", &self.stats.retries)
            .finish()
    }
}

impl Client {
    /// Connect to a [`NetServer`], speaking the current wire version,
    /// with no timeouts and no retry policy.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with_version(addr, wire::VERSION)
    }

    /// Connect announcing a specific wire version (within
    /// [`crate::wire::MIN_VERSION`]`..=`[`crate::wire::VERSION`]).
    /// Announcing version 2 opts out of streamed responses — every
    /// response arrives as one monolithic frame, byte-identical to what
    /// a version-2 build of this client would receive.
    pub fn connect_with_version(addr: impl ToSocketAddrs, version: u8) -> Result<Self, WireError> {
        Self::connect_with(
            addr,
            ClientConfig {
                version,
                ..ClientConfig::default()
            },
        )
    }

    /// Connect with explicit [`ClientConfig`] — timeouts and, when
    /// [`ClientConfig::retry`] is `Some`, self-healing.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, WireError> {
        let mut config = config;
        if config.version == 0 {
            config.version = wire::VERSION;
        }
        if !(wire::MIN_VERSION..=wire::VERSION).contains(&config.version) {
            return Err(WireError::Version {
                got: config.version,
                want: wire::VERSION,
            });
        }
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(WireError::from)?.collect();
        if addrs.is_empty() {
            return Err(WireError::Io("address resolved to nothing".to_string()));
        }
        let peer = config.peer.clone().unwrap_or_else(|| addrs[0].to_string());
        let stream = Self::open_stream(&addrs, &config).map_err(|e| e.with_peer(&peer))?;
        let reader_stream = stream.try_clone().map_err(WireError::from)?;
        let rng = config.retry.as_ref().map_or(1, |p| p.seed | 1);
        Ok(Self {
            addrs,
            config,
            peer,
            reader: BufReader::new(reader_stream),
            writer: BufWriter::new(stream),
            next_id: 1,
            in_flight: VecDeque::new(),
            stats: ClientStats::default(),
            rng,
            last_delay: Duration::ZERO,
        })
    }

    /// This client's resilience counters so far.
    pub fn client_stats(&self) -> ClientStats {
        self.stats
    }

    /// The peer label stamped onto this client's transport errors
    /// ([`ClientConfig::peer`], defaulting to the connected address).
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Open one TCP connection to the first answering resolved address,
    /// honoring the configured timeouts.
    fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> Result<TcpStream, WireError> {
        let mut last: Option<WireError> = None;
        for addr in addrs {
            let attempt = match config.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(config.read_timeout);
                    let _ = stream.set_write_timeout(config.write_timeout);
                    return Ok(stream);
                }
                Err(e) => last = Some(WireError::from(e)),
            }
        }
        Err(last.unwrap_or_else(|| WireError::Io("address resolved to nothing".to_string())))
    }

    /// Whether `e` is worth another attempt under the armed policy.
    fn should_retry(&self, e: &WireError, attempt: u32) -> bool {
        e.retryable()
            && self
                .config
                .retry
                .as_ref()
                .is_some_and(|p| attempt < p.max_retries)
    }

    /// Sleep before a retry: the server's hint when it gave one,
    /// decorrelated jitter otherwise, both capped at
    /// [`RetryPolicy::max_delay`].
    fn sleep_backoff(&mut self, hint: Option<Duration>) {
        let Some(policy) = self.config.retry.clone() else {
            return;
        };
        let delay = hint
            .unwrap_or_else(|| self.next_backoff(&policy))
            .min(policy.max_delay);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Next decorrelated-jitter delay: uniform in
    /// `base .. min(cap, 3 × previous)`.
    fn next_backoff(&mut self, policy: &RetryPolicy) -> Duration {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let base = policy.base_delay.max(Duration::from_micros(100));
        let prev = self.last_delay.max(base);
        let span = (prev * 3).min(policy.max_delay.max(base));
        let spread = (span.as_nanos().saturating_sub(base.as_nanos()).max(1)) as u64;
        let delay = base + Duration::from_nanos(z % spread);
        self.last_delay = delay;
        delay
    }

    /// Reconnect and replay every in-flight batch, oldest first, under
    /// fresh frame ids. Sound because every serving operation is
    /// read-only: replaying a request cannot double-apply anything, and
    /// the responses are bit-identical to what the lost connection would
    /// have carried.
    fn reconnect_and_replay(&mut self) -> Result<(), WireError> {
        self.stats.reconnects += 1;
        let stream = Self::open_stream(&self.addrs, &self.config)?;
        let reader_stream = stream.try_clone().map_err(WireError::from)?;
        self.reader = BufReader::new(reader_stream);
        self.writer = BufWriter::new(stream);
        for entry in self.in_flight.iter_mut() {
            let id = self.next_id;
            self.next_id += 1;
            let payload = wire::encode_request_batch(&entry.1);
            wire::write_frame_vectored_v(
                &mut self.writer,
                self.config.version,
                FrameKind::Request,
                id,
                &payload,
            )?;
            entry.0 = id;
        }
        self.writer.flush().map_err(WireError::from)?;
        Ok(())
    }

    /// Write one request frame and flush it, consuming a frame id.
    fn write_batch_frame(&mut self, requests: &[Request]) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request_batch(requests);
        wire::write_frame_vectored_v(
            &mut self.writer,
            self.config.version,
            FrameKind::Request,
            id,
            &payload,
        )?;
        self.writer.flush().map_err(WireError::from)?;
        Ok(id)
    }

    /// Send one request batch and return its frame id without waiting
    /// for the response — the pipelining half of [`Client::batch`].
    /// With a retry policy armed, a retryable transport failure here
    /// reconnects (replaying older in-flight batches) and tries again.
    pub fn send(&mut self, requests: &[Request]) -> Result<u64, WireError> {
        let mut attempt = 0u32;
        loop {
            match self.write_batch_frame(requests) {
                Ok(id) => {
                    // Retain the requests only when a policy might need
                    // to replay them; the hot no-retry path keeps its
                    // old zero-copy bookkeeping.
                    let stored = if self.config.retry.is_some() {
                        requests.to_vec()
                    } else {
                        Vec::new()
                    };
                    self.in_flight.push_back((id, stored));
                    return Ok(id);
                }
                Err(e) if self.should_retry(&e, attempt) => {
                    attempt += 1;
                    self.stats.retries += 1;
                    self.sleep_backoff(None);
                    // A failed reconnect leaves the dead socket in
                    // place; the next write fails and spends another
                    // attempt until the budget runs out.
                    let _ = self.reconnect_and_replay();
                }
                Err(e) => return Err(e.with_peer(&self.peer)),
            }
        }
    }

    /// Receive the response batch for the oldest in-flight
    /// [`Client::send`], reassembling streamed responses transparently:
    /// the read loop accepts stream fragments (in sequence order, on the
    /// expected frame id) until the `FIN` fragment lands, and decodes
    /// the reassembled payload exactly as it would a single response
    /// frame. An error frame is honored even mid-stream; a connection
    /// close or stray response frame mid-stream is
    /// [`WireError::StreamTruncated`]. With a retry policy armed, a
    /// retryable transport failure reconnects, replays every in-flight
    /// batch, and resumes waiting.
    pub fn recv(&mut self) -> Result<Vec<Result<Response, ServeError>>, WireError> {
        if self.in_flight.is_empty() {
            return Err(WireError::Malformed(
                "recv with no request in flight".to_string(),
            ));
        }
        let mut attempt = 0u32;
        loop {
            let expected = self.in_flight.front().expect("checked above").0;
            match self.recv_batch_frame(expected) {
                Ok(responses) => {
                    self.in_flight.pop_front();
                    return Ok(responses);
                }
                Err(e) if self.should_retry(&e, attempt) => {
                    attempt += 1;
                    self.stats.retries += 1;
                    self.sleep_backoff(None);
                    let _ = self.reconnect_and_replay();
                }
                Err(e) => {
                    self.in_flight.pop_front();
                    return Err(e.with_peer(&self.peer));
                }
            }
        }
    }

    /// One attempt at reading the response batch for frame `expected`.
    fn recv_batch_frame(
        &mut self,
        expected: u64,
    ) -> Result<Vec<Result<Response, ServeError>>, WireError> {
        let mut reasm = wire::StreamReassembler::new();
        loop {
            let (header, payload) = match wire::read_frame(&mut self.reader) {
                Ok(frame) => frame,
                Err(WireError::ConnectionClosed { .. } | WireError::Truncated { .. })
                    if reasm.in_progress() =>
                {
                    return Err(WireError::StreamTruncated)
                }
                Err(e) => return Err(e),
            };
            match header.kind {
                FrameKind::Stream => {
                    if !reasm.in_progress() && header.id != expected {
                        return Err(WireError::IdMismatch {
                            expected,
                            got: header.id,
                        });
                    }
                    match reasm.push(&header, &payload)? {
                        Some(done) => return wire::decode_response_batch(&done),
                        None => continue,
                    }
                }
                FrameKind::Response => {
                    if reasm.in_progress() {
                        return Err(WireError::StreamTruncated);
                    }
                    if header.id != expected {
                        return Err(WireError::IdMismatch {
                            expected,
                            got: header.id,
                        });
                    }
                    return wire::decode_response_batch(&payload);
                }
                FrameKind::Error => {
                    return Err(WireError::Remote(wire::decode_error_payload(&payload)?))
                }
                FrameKind::Request => {
                    return Err(WireError::Malformed(
                        "server sent a request frame".to_string(),
                    ))
                }
            }
        }
    }

    /// Submit one batch and wait for its responses — the network twin of
    /// [`Server::handle_batch`]. With a retry policy armed, responses
    /// carrying retryable errors ([`ServeError::retryable`] — shedding,
    /// internal failures, transient archive I/O) make the whole batch
    /// back off and resubmit, honoring the server's
    /// [`ServeError::Overloaded::retry_after_ms`] hint when present;
    /// read-only semantics make the resubmission safe and the eventual
    /// responses bit-identical.
    pub fn batch(
        &mut self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, ServeError>>, WireError> {
        let budget = self.config.retry.as_ref().map_or(0, |p| p.max_retries);
        let mut attempt = 0u32;
        loop {
            self.send(requests)?;
            let responses = self.recv()?;
            let needs_retry = responses
                .iter()
                .any(|r| matches!(r, Err(e) if e.retryable()));
            if !needs_retry || attempt >= budget {
                return Ok(responses);
            }
            attempt += 1;
            self.stats.retries += 1;
            let hint = responses
                .iter()
                .filter_map(|r| match r {
                    Err(ServeError::Overloaded { retry_after_ms }) => {
                        Some(Duration::from_millis(u64::from(*retry_after_ms)))
                    }
                    _ => None,
                })
                .max();
            self.sleep_backoff(hint);
        }
    }

    /// Submit one request and wait for its response. The outer error is
    /// the transport, the inner the request itself.
    pub fn request(
        &mut self,
        request: &Request,
    ) -> Result<Result<Response, ServeError>, WireError> {
        let mut responses = self.batch(std::slice::from_ref(request))?;
        match responses.len() {
            1 => Ok(responses.pop().expect("one response")),
            n => Err(WireError::Malformed(format!(
                "{n} responses to a 1-request batch"
            ))),
        }
    }

    /// Fetch the server's serving counters over the wire.
    pub fn stats(&mut self) -> Result<ServeStats, WireError> {
        match self.request(&Request::Stats)? {
            Ok(Response::Stats(stats)) => Ok(stats),
            Ok(other) => Err(WireError::Malformed(format!(
                "stats request answered with {other:?}"
            ))),
            Err(e) => Err(WireError::Remote(e.to_string())),
        }
    }

    /// Evaluate one derived product server-side — the network twin of a
    /// [`Request::Product`] through [`Server::handle_batch`]. The result
    /// is bit-identical to the in-process evaluation of the same
    /// descriptor.
    pub fn scenario(&mut self, descriptor: &ProductDescriptor) -> Result<ProductData, WireError> {
        match self.request(&Request::Product(descriptor.clone()))? {
            Ok(Response::Product(data)) => Ok(data),
            Ok(other) => Err(WireError::Malformed(format!(
                "product request answered with {other:?}"
            ))),
            Err(e) => Err(WireError::Remote(e.to_string())),
        }
    }

    /// Run a stochastic ensemble server-side: `spec.realizations`
    /// emulator runs with decorrelated per-realization seeds, returned
    /// as one raw [`ProductData`] block (the network twin of
    /// [`Request::Ensemble`]).
    pub fn ensemble(&mut self, spec: &ScenarioSpec) -> Result<ProductData, WireError> {
        match self.request(&Request::Ensemble(spec.clone()))? {
            Ok(Response::Product(data)) => Ok(data),
            Ok(other) => Err(WireError::Malformed(format!(
                "ensemble request answered with {other:?}"
            ))),
            Err(e) => Err(WireError::Remote(e.to_string())),
        }
    }
}
