//! The ECN1 wire protocol: framed, checksummed, versioned request/response
//! encoding for the network front end.
//!
//! The protocol is deliberately dependency-free (plain `std`, no serde on
//! the wire) and mirrors the hostile-input discipline of the `ECA1`
//! container in `exaclim-store`: every frame is length-prefixed **and**
//! capped ([`MAX_FRAME_PAYLOAD`]), every payload is CRC32-protected (the
//! same slice-by-8 [`exaclim_store::crc32`] the archives use), and the
//! decoder validates every length claim against the bytes actually
//! present *before* allocating — a hostile peer can waste its own
//! bandwidth, not this process's memory.
//!
//! ## Frame layout
//!
//! Every message is one frame; all integers are little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic, the literal bytes "ECN1"
//! 4       1     protocol version (currently 2)
//! 5       1     frame kind: 1 = request batch, 2 = response batch, 3 = error
//! 6       2     reserved, must be zero
//! 8       8     frame id (echoed verbatim in the matching response)
//! 16      4     payload length in bytes (≤ MAX_FRAME_PAYLOAD)
//! 20      4     CRC32 of the payload bytes
//! 24      …     payload
//! ```
//!
//! Version 2 added the scenario-engine ops — product and ensemble
//! requests ([`crate::ProductDescriptor`], [`crate::ScenarioSpec`]) and
//! the product response block — plus the product-cache counters in the
//! stats reply. Versions must match exactly: a version-1 peer is
//! rejected with [`WireError::Version`] before any payload is read.
//!
//! A **request** frame's payload is a batch: a `u32` count followed by
//! that many encoded [`Request`]s. The matching **response** frame echoes
//! the frame id and carries one encoded `Result<Response, ServeError>`
//! per request, in request order — the wire analogue of
//! [`crate::Server::handle_batch`]. An **error** frame reports a
//! transport-level failure (malformed frame, version mismatch) and is
//! terminal for the connection.
//!
//! Frame ids are chosen by the client (monotonically increasing in
//! [`crate::net::Client`]) and let requests pipeline: a client may write
//! several request frames before reading the first response; the server
//! answers in arrival order.
//!
//! ## Example
//!
//! A request batch survives an encode/decode round trip bit-identically:
//!
//! ```
//! use exaclim_serve::wire::{self, FrameKind};
//! use exaclim_serve::{Request, SliceRequest};
//!
//! let batch = vec![
//!     Request::Slice(SliceRequest {
//!         archive: "era5".to_string(),
//!         member: "t2m".to_string(),
//!         range: 10..20,
//!     }),
//!     Request::Stats,
//! ];
//! let frame = wire::encode_frame(FrameKind::Request, 7, &wire::encode_request_batch(&batch)).unwrap();
//! let (header, payload) = wire::decode_frame(&frame).unwrap();
//! assert_eq!((header.kind, header.id), (FrameKind::Request, 7));
//! assert_eq!(wire::decode_request_batch(payload).unwrap(), batch);
//! ```

use crate::error::{ServeError, WireError};
use crate::product::{ProductData, ProductDescriptor, ProductSource, ProductStat, ScenarioSpec};
use crate::server::{
    ArchiveInfo, CatalogAnswer, CatalogQuery, EmulatorInfo, MemberInfo, Request, Response,
    ServeStats, SliceData,
};
use crate::SliceRequest;
use exaclim_climate::Dataset;
use exaclim_store::{crc32, ArchiveError, MemberKind};
use std::io::{IoSlice, Read, Write};

/// Frame magic: the literal bytes `ECN1` at offset 0 of every frame.
pub const MAGIC: [u8; 4] = *b"ECN1";

/// Protocol version this build speaks (header byte 4). Version 2 added
/// the scenario-engine ops.
pub const VERSION: u8 = 2;

/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 24;

/// Upper bound on one frame's payload (1 GiB), mirroring the archive
/// decode cap [`exaclim_store::format::MAX_CHUNK_RAW_LEN`]: the reader
/// rejects larger length claims *before* allocating or reading, which
/// bounds what a hostile peer can make this process buffer.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// Cap on one length-prefixed string (64 KiB) — names on the wire are
/// archive/member/emulator names and error messages, never bulk data.
/// The decoder rejects longer claims; the encoder clips longer inputs to
/// this many bytes at a char boundary, so an over-long name degrades to
/// a harmless prefix instead of a connection-fatal transport error.
pub const MAX_STR_LEN: u32 = 1 << 16;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A batch of [`Request`]s (client → server).
    Request,
    /// The batch's `Result<Response, ServeError>`s (server → client).
    Response,
    /// A terminal transport-level error report (either direction).
    Error,
}

impl FrameKind {
    /// Wire id of this kind (header byte 5).
    pub fn id(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Error => 3,
        }
    }

    /// Parse a wire id.
    pub fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            3 => Ok(FrameKind::Error),
            other => Err(WireError::BadFrameKind(other)),
        }
    }
}

/// The decoded fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub kind: FrameKind,
    /// Frame id, echoed in the matching response.
    pub id: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32 of the payload.
    pub crc: u32,
}

impl FrameHeader {
    /// Serialize to the fixed 24-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&MAGIC);
        h[4] = VERSION;
        h[5] = self.kind.id();
        // bytes 6..8 reserved, zero
        h[8..16].copy_from_slice(&self.id.to_le_bytes());
        h[16..20].copy_from_slice(&self.len.to_le_bytes());
        h[20..24].copy_from_slice(&self.crc.to_le_bytes());
        h
    }

    /// Parse and validate the fixed 24-byte wire form: magic, version,
    /// kind, reserved bytes, and the [`MAX_FRAME_PAYLOAD`] cap.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, WireError> {
        if bytes[0..4] != MAGIC {
            return Err(WireError::BadMagic([
                bytes[0], bytes[1], bytes[2], bytes[3],
            ]));
        }
        if bytes[4] != VERSION {
            return Err(WireError::Version {
                got: bytes[4],
                want: VERSION,
            });
        }
        let kind = FrameKind::from_id(bytes[5])?;
        if bytes[6] != 0 || bytes[7] != 0 {
            return Err(WireError::Malformed(format!(
                "reserved header bytes are {:#04x}{:#04x}, want zero",
                bytes[6], bytes[7]
            )));
        }
        let id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            return Err(WireError::FrameTooLarge {
                len: u64::from(len),
                max: u64::from(MAX_FRAME_PAYLOAD),
            });
        }
        let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        Ok(Self { kind, id, len, crc })
    }
}

/// Assemble one complete frame (header + payload) in memory.
///
/// Fails with [`WireError::FrameTooLarge`] if `payload` exceeds
/// [`MAX_FRAME_PAYLOAD`] — the sender enforces the same cap the receiver
/// does, so an over-long batch is rejected before it ties up the socket.
pub fn encode_frame(kind: FrameKind, id: u64, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let header = FrameHeader {
        kind,
        id,
        len: payload.len() as u32,
        crc: crc32(payload),
    };
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&header.encode());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Decode one complete frame from a byte buffer, returning the header and
/// a borrowed view of the checksum-verified payload. Trailing bytes after
/// the payload are an error — a frame is exactly as long as it claims.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            context: "frame header",
        });
    }
    let header = FrameHeader::decode(bytes[..HEADER_LEN].try_into().expect("header slice"))?;
    let want = HEADER_LEN
        .checked_add(header.len as usize)
        .ok_or(WireError::FrameTooLarge {
            len: u64::from(header.len),
            max: u64::from(MAX_FRAME_PAYLOAD),
        })?;
    if bytes.len() < want {
        return Err(WireError::Truncated {
            context: "frame payload",
        });
    }
    if bytes.len() > want {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after frame end",
            bytes.len() - want
        )));
    }
    let payload = &bytes[HEADER_LEN..want];
    let actual = crc32(payload);
    if actual != header.crc {
        return Err(WireError::ChecksumMismatch {
            expected: header.crc,
            actual,
        });
    }
    Ok((header, payload))
}

/// Write one frame to a stream (header, then payload). The caller is
/// responsible for flushing.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let header = FrameHeader {
        kind,
        id,
        len: payload.len() as u32,
        crc: crc32(payload),
    };
    w.write_all(&header.encode())?;
    w.write_all(payload)?;
    Ok(())
}

/// Write one frame with a single gathered syscall where the stream
/// supports it: header and payload go out through `write_vectored`
/// instead of two sequential writes, so a small response frame reaches
/// the socket in one `writev` and never straddles two TCP segments just
/// because the header was flushed alone.
///
/// Byte-for-byte identical on the wire to [`write_frame`]; partial
/// vectored writes are resumed until the header is fully out, then any
/// payload remainder is completed with `write_all`.
pub fn write_frame_vectored(
    w: &mut impl Write,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let header = FrameHeader {
        kind,
        id,
        len: payload.len() as u32,
        crc: crc32(payload),
    }
    .encode();
    // `write_all_vectored` is unstable, so resume partial writes by hand:
    // while any header byte is unwritten, gather the header tail and the
    // whole payload; once the cursor passes the header, finish the
    // payload tail with plain `write_all`.
    let mut written = 0usize;
    while written < HEADER_LEN {
        let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
        match w.write_vectored(&bufs) {
            Ok(0) => {
                return Err(WireError::from(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "frame write made no progress",
                )))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::from(e)),
        }
    }
    let payload_written = written - HEADER_LEN;
    if payload_written < payload.len() {
        w.write_all(&payload[payload_written..])?;
    }
    Ok(())
}

/// Read one frame from a stream: header, validation (magic, version,
/// kind, payload cap — rejected **before** the payload is read or
/// buffered), then the checksum-verified payload.
///
/// A clean EOF before the first header byte is
/// [`WireError::ConnectionClosed`]; EOF anywhere inside the frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<(FrameHeader, Vec<u8>), WireError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = r
            .read(&mut header_bytes[filled..])
            .map_err(WireError::from)?;
        if n == 0 {
            return if filled == 0 {
                Err(WireError::ConnectionClosed)
            } else {
                Err(WireError::Truncated {
                    context: "frame header",
                })
            };
        }
        filled += n;
    }
    let header = FrameHeader::decode(&header_bytes)?;
    // Grow the payload buffer as bytes actually arrive (`take` +
    // `read_to_end` doubles from a small capacity) rather than
    // zero-filling the claimed length up front — a peer that claims
    // 1 GiB but trickles bytes ties up only the memory it has sent.
    let len = header.len as usize;
    let mut payload = Vec::new();
    let got = r
        .by_ref()
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(WireError::from)?;
    if got < len {
        return Err(WireError::Truncated {
            context: "frame payload",
        });
    }
    let actual = crc32(&payload);
    if actual != header.crc {
        return Err(WireError::ChecksumMismatch {
            expected: header.crc,
            actual,
        });
    }
    Ok((header, payload))
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

/// Append-only payload encoder (little-endian throughout).
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Length-prefixed string, clipped to [`MAX_STR_LEN`] at a char
    /// boundary: names and messages past the cap degrade to their prefix
    /// (an over-long archive name simply won't match the catalog) rather
    /// than producing a payload the peer must reject — which would
    /// escalate one bad field into a connection-fatal transport error.
    fn str(&mut self, s: &str) {
        let mut end = (MAX_STR_LEN as usize).min(s.len());
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let s = &s[..end];
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn f64s(&mut self, values: &[f64]) {
        self.u64(values.len() as u64);
        for v in values {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Checked payload decoder: every read validates its length claim against
/// the bytes actually remaining before touching (or allocating for) them.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed(format!(
                "{context}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }
    fn u16(&mut self, context: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self, context: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self, context: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self, context: &str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// `usize` from a `u64` field, rejecting values that cannot index
    /// memory on this target.
    fn usize(&mut self, context: &str) -> Result<usize, WireError> {
        let v = self.u64(context)?;
        usize::try_from(v)
            .map_err(|_| WireError::Malformed(format!("{context}: {v} exceeds address space")))
    }

    fn str(&mut self, context: &str) -> Result<String, WireError> {
        let len = self.u32(context)?;
        if len > MAX_STR_LEN {
            return Err(WireError::Malformed(format!(
                "{context}: string of {len} bytes exceeds the {MAX_STR_LEN}-byte cap"
            )));
        }
        let bytes = self.take(len as usize, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("{context}: invalid UTF-8")))
    }

    fn f64s(&mut self, context: &str) -> Result<Vec<f64>, WireError> {
        let count = self.u64(context)?;
        // The claim must fit in the bytes that are actually here — this is
        // the allocation guard: a hostile count of 2^60 is rejected before
        // any buffer is sized from it.
        let need = count
            .checked_mul(8)
            .ok_or_else(|| WireError::Malformed(format!("{context}: value count overflows")))?;
        if need > self.remaining() as u64 {
            return Err(WireError::Malformed(format!(
                "{context}: {count} values claimed, {} bytes remain",
                self.remaining()
            )));
        }
        let raw = self.take(need as usize, context)?;
        let mut values = Vec::with_capacity(count as usize);
        for chunk in raw.chunks_exact(8) {
            values.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().expect("8 bytes"),
            )));
        }
        Ok(values)
    }

    /// Assert the payload was consumed exactly.
    fn finish(self, context: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{context}: {} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const REQ_SLICE: u8 = 1;
const REQ_EMULATE: u8 = 2;
const REQ_CATALOG: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_PRODUCT: u8 = 5;
const REQ_ENSEMBLE: u8 = 6;

const CQ_LIST_ARCHIVES: u8 = 1;
const CQ_LIST_MEMBERS: u8 = 2;
const CQ_MEMBER_INFO: u8 = 3;
const CQ_LIST_EMULATORS: u8 = 4;

// Scenario-engine tags (wire version 2): product sources and statistics.
const PS_MEMBER: u8 = 1;
const PS_ENSEMBLE: u8 = 2;

const ST_RAW: u8 = 1;
const ST_ANOMALY: u8 = 2;
const ST_MEAN_STD: u8 = 3;
const ST_TREND: u8 = 4;
const ST_PERSISTENCE: u8 = 5;
const ST_TUKEY: u8 = 6;

fn encode_scenario_spec(e: &mut Enc, spec: &ScenarioSpec) {
    e.str(&spec.emulator);
    e.u64(spec.t_max);
    e.u64(spec.seed);
    e.u32(spec.realizations);
}

fn decode_scenario_spec(d: &mut Dec) -> Result<ScenarioSpec, WireError> {
    Ok(ScenarioSpec {
        emulator: d.str("scenario emulator")?,
        t_max: d.u64("scenario t_max")?,
        seed: d.u64("scenario seed")?,
        realizations: d.u32("scenario realizations")?,
    })
}

/// Optional half-open window: a presence byte, then `start`/`end` when
/// present. The presence byte must be exactly 0 or 1 so every descriptor
/// has one canonical wire form.
fn encode_window(e: &mut Enc, window: &Option<std::ops::Range<u64>>) {
    match window {
        Some(r) => {
            e.u8(1);
            e.u64(r.start);
            e.u64(r.end);
        }
        None => e.u8(0),
    }
}

fn decode_window(d: &mut Dec, context: &str) -> Result<Option<std::ops::Range<u64>>, WireError> {
    match d.u8(context)? {
        0 => Ok(None),
        1 => {
            let start = d.u64(context)?;
            let end = d.u64(context)?;
            Ok(Some(start..end))
        }
        other => Err(WireError::Malformed(format!(
            "{context}: presence byte is {other}, want 0 or 1"
        ))),
    }
}

fn encode_product_descriptor(e: &mut Enc, desc: &ProductDescriptor) {
    match &desc.source {
        ProductSource::Member { archive, member } => {
            e.u8(PS_MEMBER);
            e.str(archive);
            e.str(member);
        }
        ProductSource::Ensemble(spec) => {
            e.u8(PS_ENSEMBLE);
            encode_scenario_spec(e, spec);
        }
    }
    match &desc.stat {
        ProductStat::Raw => e.u8(ST_RAW),
        ProductStat::Anomaly { archive, member } => {
            e.u8(ST_ANOMALY);
            e.str(archive);
            e.str(member);
        }
        ProductStat::MeanStd => e.u8(ST_MEAN_STD),
        ProductStat::Trend => e.u8(ST_TREND),
        ProductStat::Persistence { order } => {
            e.u8(ST_PERSISTENCE);
            e.u32(*order);
        }
        ProductStat::TukeyExtremes { tail_per_mille } => {
            e.u8(ST_TUKEY);
            e.u32(*tail_per_mille);
        }
    }
    encode_window(e, &desc.time);
    encode_window(e, &desc.space);
}

fn decode_product_descriptor(d: &mut Dec) -> Result<ProductDescriptor, WireError> {
    let source = match d.u8("product source tag")? {
        PS_MEMBER => ProductSource::Member {
            archive: d.str("product archive")?,
            member: d.str("product member")?,
        },
        PS_ENSEMBLE => ProductSource::Ensemble(decode_scenario_spec(d)?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown product source tag {other}"
            )))
        }
    };
    let stat = match d.u8("product stat tag")? {
        ST_RAW => ProductStat::Raw,
        ST_ANOMALY => ProductStat::Anomaly {
            archive: d.str("anomaly baseline archive")?,
            member: d.str("anomaly baseline member")?,
        },
        ST_MEAN_STD => ProductStat::MeanStd,
        ST_TREND => ProductStat::Trend,
        ST_PERSISTENCE => ProductStat::Persistence {
            order: d.u32("persistence order")?,
        },
        ST_TUKEY => ProductStat::TukeyExtremes {
            tail_per_mille: d.u32("tukey tail_per_mille")?,
        },
        other => {
            return Err(WireError::Malformed(format!(
                "unknown product stat tag {other}"
            )))
        }
    };
    let time = decode_window(d, "product time window")?;
    let space = decode_window(d, "product space window")?;
    Ok(ProductDescriptor {
        source,
        stat,
        time,
        space,
    })
}

fn encode_request(e: &mut Enc, req: &Request) {
    match req {
        Request::Slice(s) => {
            e.u8(REQ_SLICE);
            e.str(&s.archive);
            e.str(&s.member);
            e.u64(s.range.start);
            e.u64(s.range.end);
        }
        Request::Emulate {
            emulator,
            t_max,
            seed,
        } => {
            e.u8(REQ_EMULATE);
            e.str(emulator);
            e.u64(*t_max as u64);
            e.u64(*seed);
        }
        Request::Catalog(q) => {
            e.u8(REQ_CATALOG);
            match q {
                CatalogQuery::ListArchives => e.u8(CQ_LIST_ARCHIVES),
                CatalogQuery::ListMembers { archive } => {
                    e.u8(CQ_LIST_MEMBERS);
                    e.str(archive);
                }
                CatalogQuery::MemberInfo { archive, member } => {
                    e.u8(CQ_MEMBER_INFO);
                    e.str(archive);
                    e.str(member);
                }
                CatalogQuery::ListEmulators => e.u8(CQ_LIST_EMULATORS),
            }
        }
        Request::Stats => e.u8(REQ_STATS),
        Request::Product(desc) => {
            e.u8(REQ_PRODUCT);
            encode_product_descriptor(e, desc);
        }
        Request::Ensemble(spec) => {
            e.u8(REQ_ENSEMBLE);
            encode_scenario_spec(e, spec);
        }
    }
}

fn decode_request(d: &mut Dec) -> Result<Request, WireError> {
    match d.u8("request tag")? {
        REQ_SLICE => Ok(Request::Slice(SliceRequest {
            archive: d.str("slice archive")?,
            member: d.str("slice member")?,
            range: {
                let start = d.u64("slice range start")?;
                let end = d.u64("slice range end")?;
                start..end
            },
        })),
        REQ_EMULATE => Ok(Request::Emulate {
            emulator: d.str("emulate name")?,
            t_max: d.usize("emulate t_max")?,
            seed: d.u64("emulate seed")?,
        }),
        REQ_CATALOG => {
            let q = match d.u8("catalog query tag")? {
                CQ_LIST_ARCHIVES => CatalogQuery::ListArchives,
                CQ_LIST_MEMBERS => CatalogQuery::ListMembers {
                    archive: d.str("list-members archive")?,
                },
                CQ_MEMBER_INFO => CatalogQuery::MemberInfo {
                    archive: d.str("member-info archive")?,
                    member: d.str("member-info member")?,
                },
                CQ_LIST_EMULATORS => CatalogQuery::ListEmulators,
                other => {
                    return Err(WireError::Malformed(format!(
                        "unknown catalog query tag {other}"
                    )))
                }
            };
            Ok(Request::Catalog(q))
        }
        REQ_STATS => Ok(Request::Stats),
        REQ_PRODUCT => Ok(Request::Product(decode_product_descriptor(d)?)),
        REQ_ENSEMBLE => Ok(Request::Ensemble(decode_scenario_spec(d)?)),
        other => Err(WireError::Malformed(format!("unknown request tag {other}"))),
    }
}

/// Encode a batch of requests as a request-frame payload.
pub fn encode_request_batch(requests: &[Request]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(requests.len() as u32);
    for r in requests {
        encode_request(&mut e, r);
    }
    e.buf
}

/// Decode a request-frame payload. The whole payload must be consumed —
/// trailing bytes are malformed, mirroring the container's
/// no-trailing-garbage rule.
pub fn decode_request_batch(payload: &[u8]) -> Result<Vec<Request>, WireError> {
    let mut d = Dec::new(payload);
    let count = d.u32("request count")? as usize;
    // Every request is at least one tag byte; a count beyond the
    // remaining bytes is a lie and is rejected before any allocation
    // is sized from it.
    if count > d.remaining() {
        return Err(WireError::Malformed(format!(
            "{count} requests claimed in a {}-byte payload",
            d.remaining()
        )));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        requests.push(decode_request(&mut d)?);
    }
    d.finish("request batch")?;
    Ok(requests)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const RESP_SLICE: u8 = 1;
const RESP_EMULATE: u8 = 2;
const RESP_CATALOG: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_PRODUCT: u8 = 5;

const CA_ARCHIVES: u8 = 1;
const CA_MEMBERS: u8 = 2;
const CA_MEMBER: u8 = 3;
const CA_EMULATORS: u8 = 4;

fn encode_member_info(e: &mut Enc, m: &MemberInfo) {
    e.str(&m.name);
    e.u8(m.kind.id());
    e.u8(m.codec);
    e.u64(m.t_max);
    e.u64(m.values_per_slice);
    e.u64(m.chunks as u64);
    e.u32(m.snapshot_version);
}

fn decode_member_info(d: &mut Dec) -> Result<MemberInfo, WireError> {
    Ok(MemberInfo {
        name: d.str("member name")?,
        kind: match d.u8("member kind")? {
            0 => MemberKind::Field,
            1 => MemberKind::Snapshot,
            other => return Err(WireError::Malformed(format!("unknown member kind {other}"))),
        },
        codec: d.u8("member codec")?,
        t_max: d.u64("member t_max")?,
        values_per_slice: d.u64("member values_per_slice")?,
        chunks: d.usize("member chunk count")?,
        snapshot_version: d.u32("member snapshot version")?,
    })
}

fn encode_response(e: &mut Enc, resp: &Response) {
    match resp {
        Response::Slice(s) => {
            e.u8(RESP_SLICE);
            e.str(&s.archive);
            e.str(&s.member);
            e.u64(s.range.start);
            e.u64(s.range.end);
            e.u64(s.values_per_slice);
            e.f64s(&s.values);
        }
        Response::Emulate(ds) => {
            e.u8(RESP_EMULATE);
            e.u64(ds.t_max as u64);
            e.u64(ds.npoints as u64);
            e.u64(ds.ntheta as u64);
            e.u64(ds.nphi as u64);
            e.i64(ds.start_year);
            e.u64(ds.tau as u64);
            e.f64s(&ds.data);
        }
        Response::Catalog(a) => {
            e.u8(RESP_CATALOG);
            match a {
                CatalogAnswer::Archives(list) => {
                    e.u8(CA_ARCHIVES);
                    e.u32(list.len() as u32);
                    for a in list {
                        e.str(&a.name);
                        e.u64(a.members as u64);
                        e.u64(a.total_len);
                    }
                }
                CatalogAnswer::Members(list) => {
                    e.u8(CA_MEMBERS);
                    e.u32(list.len() as u32);
                    for m in list {
                        encode_member_info(e, m);
                    }
                }
                CatalogAnswer::Member(m) => {
                    e.u8(CA_MEMBER);
                    encode_member_info(e, m);
                }
                CatalogAnswer::Emulators(list) => {
                    e.u8(CA_EMULATORS);
                    e.u32(list.len() as u32);
                    for em in list {
                        e.str(&em.name);
                        e.u64(em.lmax as u64);
                        e.u64(em.grid.0 as u64);
                        e.u64(em.grid.1 as u64);
                        e.u64(em.parameter_bytes as u64);
                    }
                }
            }
        }
        Response::Stats(s) => {
            e.u8(RESP_STATS);
            e.u64(s.slices);
            e.u64(s.emulations);
            e.u64(s.catalog_queries);
            e.u64(s.errors);
            e.u64(s.batches);
            e.u64(s.chunk_touches);
            e.u64(s.chunk_fetches);
            e.u64(s.chunk_decodes);
            e.u64(s.products);
            e.u64(s.product_computes);
            e.u64(s.busy_nanos);
        }
        Response::Product(p) => {
            e.u8(RESP_PRODUCT);
            e.u32(p.realizations);
            e.u64(p.rows);
            e.u64(p.values_per_row);
            e.f64s(&p.values);
        }
    }
}

/// Guard a `u32` element count against the bytes remaining: each element
/// encodes to at least `min_bytes`, so any larger claim is hostile.
fn check_count(d: &Dec, count: u32, min_bytes: usize, context: &str) -> Result<usize, WireError> {
    let need = (count as u64).saturating_mul(min_bytes as u64);
    if need > d.remaining() as u64 {
        return Err(WireError::Malformed(format!(
            "{context}: {count} elements claimed, {} bytes remain",
            d.remaining()
        )));
    }
    Ok(count as usize)
}

fn decode_response(d: &mut Dec) -> Result<Response, WireError> {
    match d.u8("response tag")? {
        RESP_SLICE => {
            let archive = d.str("slice archive")?;
            let member = d.str("slice member")?;
            let start = d.u64("slice range start")?;
            let end = d.u64("slice range end")?;
            let values_per_slice = d.u64("slice values_per_slice")?;
            let values = d.f64s("slice values")?;
            Ok(Response::Slice(SliceData {
                archive,
                member,
                range: start..end,
                values_per_slice,
                values,
            }))
        }
        RESP_EMULATE => {
            let t_max = d.usize("dataset t_max")?;
            let npoints = d.usize("dataset npoints")?;
            let ntheta = d.usize("dataset ntheta")?;
            let nphi = d.usize("dataset nphi")?;
            let start_year = d.i64("dataset start_year")?;
            let tau = d.usize("dataset tau")?;
            let data = d.f64s("dataset values")?;
            let expect = t_max
                .checked_mul(npoints)
                .ok_or_else(|| WireError::Malformed("dataset geometry overflows".to_string()))?;
            if data.len() != expect {
                return Err(WireError::Malformed(format!(
                    "dataset carries {} values for {t_max}×{npoints} geometry",
                    data.len()
                )));
            }
            Ok(Response::Emulate(Dataset {
                data,
                t_max,
                npoints,
                ntheta,
                nphi,
                start_year,
                tau,
            }))
        }
        RESP_CATALOG => {
            let answer = match d.u8("catalog answer tag")? {
                CA_ARCHIVES => {
                    let count = d.u32("archive count")?;
                    let count = check_count(d, count, 4 + 8 + 8, "archive list")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(ArchiveInfo {
                            name: d.str("archive name")?,
                            members: d.usize("archive member count")?,
                            total_len: d.u64("archive total_len")?,
                        });
                    }
                    CatalogAnswer::Archives(list)
                }
                CA_MEMBERS => {
                    let count = d.u32("member count")?;
                    let count = check_count(d, count, 4 + 2 + 8 * 3 + 4, "member list")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(decode_member_info(d)?);
                    }
                    CatalogAnswer::Members(list)
                }
                CA_MEMBER => CatalogAnswer::Member(decode_member_info(d)?),
                CA_EMULATORS => {
                    let count = d.u32("emulator count")?;
                    let count = check_count(d, count, 4 + 8 * 4, "emulator list")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(EmulatorInfo {
                            name: d.str("emulator name")?,
                            lmax: d.usize("emulator lmax")?,
                            grid: (d.usize("emulator ntheta")?, d.usize("emulator nphi")?),
                            parameter_bytes: d.usize("emulator parameter bytes")?,
                        });
                    }
                    CatalogAnswer::Emulators(list)
                }
                other => {
                    return Err(WireError::Malformed(format!(
                        "unknown catalog answer tag {other}"
                    )))
                }
            };
            Ok(Response::Catalog(answer))
        }
        RESP_STATS => Ok(Response::Stats(ServeStats {
            slices: d.u64("stats slices")?,
            emulations: d.u64("stats emulations")?,
            catalog_queries: d.u64("stats catalog_queries")?,
            errors: d.u64("stats errors")?,
            batches: d.u64("stats batches")?,
            chunk_touches: d.u64("stats chunk_touches")?,
            chunk_fetches: d.u64("stats chunk_fetches")?,
            chunk_decodes: d.u64("stats chunk_decodes")?,
            products: d.u64("stats products")?,
            product_computes: d.u64("stats product_computes")?,
            busy_nanos: d.u64("stats busy_nanos")?,
        })),
        RESP_PRODUCT => {
            let realizations = d.u32("product realizations")?;
            let rows = d.u64("product rows")?;
            let values_per_row = d.u64("product values_per_row")?;
            let values = d.f64s("product values")?;
            let expect = u64::from(realizations)
                .checked_mul(rows)
                .and_then(|v| v.checked_mul(values_per_row))
                .ok_or_else(|| WireError::Malformed("product geometry overflows".to_string()))?;
            if values.len() as u64 != expect {
                return Err(WireError::Malformed(format!(
                    "product carries {} values for {realizations}×{rows}×{values_per_row} geometry",
                    values.len()
                )));
            }
            Ok(Response::Product(ProductData {
                realizations,
                rows,
                values_per_row,
                values,
            }))
        }
        other => Err(WireError::Malformed(format!(
            "unknown response tag {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------------

const SE_ARCHIVE: u8 = 1;
const SE_EMULATION: u8 = 2;
const SE_UNKNOWN_ARCHIVE: u8 = 3;
const SE_UNKNOWN_EMULATOR: u8 = 4;
const SE_BAD_REQUEST: u8 = 5;

const AE_IO: u8 = 1;
const AE_BAD_MAGIC: u8 = 2;
const AE_BAD_VERSION: u8 = 3;
const AE_CORRUPT: u8 = 4;
const AE_TRAILING: u8 = 5;
const AE_TRUNCATED_CHUNK: u8 = 6;
const AE_CHECKSUM: u8 = 7;
const AE_UNKNOWN_CODEC: u8 = 8;
const AE_MEMBER_NOT_FOUND: u8 = 9;
const AE_DUPLICATE_MEMBER: u8 = 10;
const AE_BAD_REQUEST: u8 = 11;

fn encode_archive_error(e: &mut Enc, err: &ArchiveError) {
    match err {
        ArchiveError::Io(m) => {
            e.u8(AE_IO);
            e.str(m);
        }
        ArchiveError::BadMagic => e.u8(AE_BAD_MAGIC),
        ArchiveError::BadVersion(v) => {
            e.u8(AE_BAD_VERSION);
            e.u16(*v);
        }
        ArchiveError::Corrupt(m) => {
            e.u8(AE_CORRUPT);
            e.str(m);
        }
        ArchiveError::TrailingBytes { expected, actual } => {
            e.u8(AE_TRAILING);
            e.u64(*expected);
            e.u64(*actual);
        }
        ArchiveError::TruncatedChunk { member, chunk } => {
            e.u8(AE_TRUNCATED_CHUNK);
            e.str(member);
            e.u64(*chunk as u64);
        }
        ArchiveError::ChecksumMismatch { member, chunk } => {
            e.u8(AE_CHECKSUM);
            e.str(member);
            e.u64(*chunk as u64);
        }
        ArchiveError::UnknownCodec(id) => {
            e.u8(AE_UNKNOWN_CODEC);
            e.u8(*id);
        }
        ArchiveError::MemberNotFound(n) => {
            e.u8(AE_MEMBER_NOT_FOUND);
            e.str(n);
        }
        ArchiveError::DuplicateMember(n) => {
            e.u8(AE_DUPLICATE_MEMBER);
            e.str(n);
        }
        ArchiveError::BadRequest(m) => {
            e.u8(AE_BAD_REQUEST);
            e.str(m);
        }
    }
}

fn decode_archive_error(d: &mut Dec) -> Result<ArchiveError, WireError> {
    Ok(match d.u8("archive error tag")? {
        AE_IO => ArchiveError::Io(d.str("io message")?),
        AE_BAD_MAGIC => ArchiveError::BadMagic,
        AE_BAD_VERSION => ArchiveError::BadVersion(d.u16("bad version")?),
        AE_CORRUPT => ArchiveError::Corrupt(d.str("corrupt message")?),
        AE_TRAILING => ArchiveError::TrailingBytes {
            expected: d.u64("trailing expected")?,
            actual: d.u64("trailing actual")?,
        },
        AE_TRUNCATED_CHUNK => ArchiveError::TruncatedChunk {
            member: d.str("truncated member")?,
            chunk: d.usize("truncated chunk")?,
        },
        AE_CHECKSUM => ArchiveError::ChecksumMismatch {
            member: d.str("checksum member")?,
            chunk: d.usize("checksum chunk")?,
        },
        AE_UNKNOWN_CODEC => ArchiveError::UnknownCodec(d.u8("codec id")?),
        AE_MEMBER_NOT_FOUND => ArchiveError::MemberNotFound(d.str("missing member")?),
        AE_DUPLICATE_MEMBER => ArchiveError::DuplicateMember(d.str("duplicate member")?),
        AE_BAD_REQUEST => ArchiveError::BadRequest(d.str("bad request message")?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown archive error tag {other}"
            )))
        }
    })
}

fn encode_serve_error(e: &mut Enc, err: &ServeError) {
    match err {
        ServeError::Archive(inner) => {
            e.u8(SE_ARCHIVE);
            encode_archive_error(e, inner);
        }
        ServeError::Emulation(m) => {
            e.u8(SE_EMULATION);
            e.str(m);
        }
        ServeError::UnknownArchive(n) => {
            e.u8(SE_UNKNOWN_ARCHIVE);
            e.str(n);
        }
        ServeError::UnknownEmulator(n) => {
            e.u8(SE_UNKNOWN_EMULATOR);
            e.str(n);
        }
        ServeError::BadRequest(m) => {
            e.u8(SE_BAD_REQUEST);
            e.str(m);
        }
    }
}

fn decode_serve_error(d: &mut Dec) -> Result<ServeError, WireError> {
    Ok(match d.u8("serve error tag")? {
        SE_ARCHIVE => ServeError::Archive(decode_archive_error(d)?),
        SE_EMULATION => ServeError::Emulation(d.str("emulation message")?),
        SE_UNKNOWN_ARCHIVE => ServeError::UnknownArchive(d.str("unknown archive")?),
        SE_UNKNOWN_EMULATOR => ServeError::UnknownEmulator(d.str("unknown emulator")?),
        SE_BAD_REQUEST => ServeError::BadRequest(d.str("bad request message")?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown serve error tag {other}"
            )))
        }
    })
}

/// Encode a batch's responses as a response-frame payload: one
/// `Result<Response, ServeError>` per request, in request order.
pub fn encode_response_batch(responses: &[Result<Response, ServeError>]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(responses.len() as u32);
    for r in responses {
        match r {
            Ok(resp) => {
                e.u8(1);
                encode_response(&mut e, resp);
            }
            Err(err) => {
                e.u8(0);
                encode_serve_error(&mut e, err);
            }
        }
    }
    e.buf
}

/// Decode a response-frame payload (exact inverse of
/// [`encode_response_batch`]; the round trip is bit-identical, errors
/// included).
pub fn decode_response_batch(
    payload: &[u8],
) -> Result<Vec<Result<Response, ServeError>>, WireError> {
    let mut d = Dec::new(payload);
    let count = d.u32("response count")? as usize;
    if count > d.remaining() {
        return Err(WireError::Malformed(format!(
            "{count} responses claimed in a {}-byte payload",
            d.remaining()
        )));
    }
    let mut responses = Vec::with_capacity(count);
    for _ in 0..count {
        match d.u8("result tag")? {
            1 => responses.push(Ok(decode_response(&mut d)?)),
            0 => responses.push(Err(decode_serve_error(&mut d)?)),
            other => return Err(WireError::Malformed(format!("unknown result tag {other}"))),
        }
    }
    d.finish("response batch")?;
    Ok(responses)
}

/// Encode an error-frame payload: the transport failure's display text
/// (clipped to [`MAX_STR_LEN`] at a char boundary).
pub fn encode_error_payload(message: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(message);
    e.buf
}

/// Decode an error-frame payload back to its message.
pub fn decode_error_payload(payload: &[u8]) -> Result<String, WireError> {
    let mut d = Dec::new(payload);
    let msg = d.str("error message")?;
    d.finish("error payload")?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Slice(SliceRequest {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
                range: 3..17,
            }),
            Request::Emulate {
                emulator: "sst-model".to_string(),
                t_max: 365,
                seed: 0xDEAD_BEEF,
            },
            Request::Catalog(CatalogQuery::ListArchives),
            Request::Catalog(CatalogQuery::ListMembers {
                archive: "era5".to_string(),
            }),
            Request::Catalog(CatalogQuery::MemberInfo {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
            }),
            Request::Catalog(CatalogQuery::ListEmulators),
            Request::Stats,
            Request::Product(ProductDescriptor {
                source: ProductSource::Member {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                },
                stat: ProductStat::Anomaly {
                    archive: "era5".to_string(),
                    member: "t2m-baseline".to_string(),
                },
                time: Some(10..50),
                space: None,
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Ensemble(ScenarioSpec {
                    emulator: "sst-model".to_string(),
                    t_max: 730,
                    seed: 7,
                    realizations: 16,
                }),
                stat: ProductStat::Trend,
                time: None,
                space: Some(3..9),
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Member {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                },
                stat: ProductStat::Persistence { order: 3 },
                time: Some(0..64),
                space: Some(0..4),
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Ensemble(ScenarioSpec {
                    emulator: "sst-model".to_string(),
                    t_max: 365,
                    seed: 0,
                    realizations: 4,
                }),
                stat: ProductStat::TukeyExtremes { tail_per_mille: 25 },
                time: None,
                space: None,
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Member {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                },
                stat: ProductStat::MeanStd,
                time: None,
                space: None,
            }),
            Request::Ensemble(ScenarioSpec {
                emulator: "sst-model".to_string(),
                t_max: 365,
                seed: 0xC0FFEE,
                realizations: 32,
            }),
        ]
    }

    fn sample_responses() -> Vec<Result<Response, ServeError>> {
        vec![
            Ok(Response::Slice(SliceData {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
                range: 3..17,
                values_per_slice: 4,
                values: (0..56).map(|i| 260.0 + f64::from(i) * 0.25).collect(),
            })),
            Ok(Response::Emulate(Dataset {
                data: vec![1.5, -2.5, f64::MIN_POSITIVE, 0.0, -0.0, f64::MAX],
                t_max: 3,
                npoints: 2,
                ntheta: 1,
                nphi: 2,
                start_year: -44,
                tau: 365,
            })),
            Ok(Response::Catalog(CatalogAnswer::Archives(vec![
                ArchiveInfo {
                    name: "era5".to_string(),
                    members: 2,
                    total_len: 12345,
                },
            ]))),
            Ok(Response::Catalog(CatalogAnswer::Member(MemberInfo {
                name: "t2m".to_string(),
                kind: MemberKind::Field,
                codec: 3,
                t_max: 100,
                values_per_slice: 64,
                chunks: 7,
                snapshot_version: 0,
            }))),
            Ok(Response::Catalog(CatalogAnswer::Emulators(vec![
                EmulatorInfo {
                    name: "sst-model".to_string(),
                    lmax: 31,
                    grid: (32, 64),
                    parameter_bytes: 8192,
                },
            ]))),
            Ok(Response::Stats(ServeStats {
                slices: 1,
                emulations: 2,
                catalog_queries: 3,
                errors: 4,
                batches: 5,
                chunk_touches: 6,
                chunk_fetches: 7,
                chunk_decodes: 8,
                products: 9,
                product_computes: 10,
                busy_nanos: 11,
            })),
            Ok(Response::Product(ProductData {
                realizations: 2,
                rows: 3,
                values_per_row: 2,
                values: (0..12).map(|i| f64::from(i) * 0.5 - 1.0).collect(),
            })),
            Err(ServeError::UnknownArchive("gone".to_string())),
            Err(ServeError::Archive(ArchiveError::ChecksumMismatch {
                member: "t2m".to_string(),
                chunk: 3,
            })),
            Err(ServeError::Archive(ArchiveError::TrailingBytes {
                expected: 100,
                actual: 120,
            })),
            Err(ServeError::Emulation("singular matrix".to_string())),
            Err(ServeError::BadRequest("no".to_string())),
        ]
    }

    #[test]
    fn request_batch_round_trips() {
        let batch = sample_requests();
        let payload = encode_request_batch(&batch);
        assert_eq!(decode_request_batch(&payload).unwrap(), batch);
    }

    #[test]
    fn response_batch_round_trips_bit_identically() {
        let batch = sample_responses();
        let payload = encode_response_batch(&batch);
        assert_eq!(decode_response_batch(&payload).unwrap(), batch);
    }

    #[test]
    fn frame_round_trips() {
        let payload = encode_request_batch(&sample_requests());
        let frame = encode_frame(FrameKind::Request, 42, &payload).unwrap();
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let (header, got) = decode_frame(&frame).unwrap();
        assert_eq!(header.kind, FrameKind::Request);
        assert_eq!(header.id, 42);
        assert_eq!(got, &payload[..]);

        // And through a stream.
        let mut cursor = std::io::Cursor::new(frame);
        let (header2, got2) = read_frame(&mut cursor).unwrap();
        assert_eq!(header2, header);
        assert_eq!(got2, payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_frame(FrameKind::Request, 0, b"xy").unwrap();
        frame[0] = b'X';
        assert!(matches!(decode_frame(&frame), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = encode_frame(FrameKind::Request, 0, b"xy").unwrap();
        frame[4] = VERSION + 1;
        assert_eq!(
            decode_frame(&frame).unwrap_err(),
            WireError::Version {
                got: VERSION + 1,
                want: VERSION
            }
        );
    }

    #[test]
    fn oversized_length_claim_is_rejected_before_reading() {
        let mut header = FrameHeader {
            kind: FrameKind::Request,
            id: 0,
            len: 0,
            crc: 0,
        }
        .encode();
        header[16..20].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        // read_frame sees only the header — the reject happens without the
        // (absent) payload ever being requested or allocated.
        let mut cursor = std::io::Cursor::new(header.to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let payload = encode_request_batch(&sample_requests());
        let mut frame = encode_frame(FrameKind::Request, 9, &payload).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let payload = encode_request_batch(&sample_requests());
        let frame = encode_frame(FrameKind::Request, 1, &payload).unwrap();
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_value_count_is_rejected_without_allocation() {
        // A slice response claiming 2^56 values in a tiny payload: the
        // decoder must fail on the length check, not size a buffer from
        // the claim.
        let mut e = Enc::new();
        e.u32(1); // one response
        e.u8(1); // ok
        e.u8(RESP_SLICE);
        e.str("a");
        e.str("m");
        e.u64(0);
        e.u64(1);
        e.u64(1);
        e.u64(1 << 56); // hostile count, then no values at all
        let err = decode_response_batch(&e.buf).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut payload = encode_request_batch(&sample_requests());
        payload.push(0);
        assert!(matches!(
            decode_request_batch(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn dataset_geometry_must_match_its_values() {
        let mut e = Enc::new();
        e.u8(RESP_EMULATE);
        e.u64(10); // t_max
        e.u64(10); // npoints — claims 100 values
        e.u64(2);
        e.u64(5);
        e.i64(2000);
        e.u64(365);
        e.f64s(&[1.0, 2.0]); // … but carries 2
        let mut d = Dec::new(&e.buf);
        assert!(matches!(
            decode_response(&mut d),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn over_long_strings_clip_at_a_char_boundary_instead_of_poisoning() {
        // 65535 ASCII bytes then a multi-byte char straddling the cap: the
        // encoder must clip below the cap without splitting the char, and
        // the result must still decode (to the prefix) on the other side.
        let name = "x".repeat((MAX_STR_LEN - 1) as usize) + "éé";
        let batch = vec![Request::Emulate {
            emulator: name.clone(),
            t_max: 1,
            seed: 0,
        }];
        let decoded = decode_request_batch(&encode_request_batch(&batch)).unwrap();
        let Request::Emulate { emulator, .. } = &decoded[0] else {
            panic!()
        };
        assert_eq!(emulator.as_str(), &name[..(MAX_STR_LEN - 1) as usize]);

        // Error-frame messages clip the same way.
        let msg = "m".repeat(MAX_STR_LEN as usize + 100);
        let decoded = decode_error_payload(&encode_error_payload(&msg)).unwrap();
        assert_eq!(decoded.len(), MAX_STR_LEN as usize);
    }

    #[test]
    fn product_geometry_must_match_its_values() {
        let mut e = Enc::new();
        e.u8(RESP_PRODUCT);
        e.u32(4); // realizations
        e.u64(5); // rows — claims 4×5×2 = 40 values
        e.u64(2); // values_per_row
        e.f64s(&[1.0, 2.0, 3.0]); // … but carries 3
        let mut d = Dec::new(&e.buf);
        assert!(matches!(
            decode_response(&mut d),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn product_geometry_overflow_is_rejected() {
        let mut e = Enc::new();
        e.u8(RESP_PRODUCT);
        e.u32(u32::MAX);
        e.u64(u64::MAX); // realizations × rows overflows u64
        e.u64(2);
        e.f64s(&[]);
        let mut d = Dec::new(&e.buf);
        assert!(matches!(
            decode_response(&mut d),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn window_presence_byte_must_be_canonical() {
        // A descriptor whose time-window presence byte is 2: exactly one
        // wire form per descriptor, so anything but 0/1 is malformed.
        let mut e = Enc::new();
        e.u32(1);
        e.u8(REQ_PRODUCT);
        e.u8(PS_MEMBER);
        e.str("a");
        e.str("m");
        e.u8(ST_RAW);
        e.u8(2); // hostile presence byte
        let err = decode_request_batch(&e.buf).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn unknown_product_tags_are_typed_errors() {
        for (source_tag, stat_tag) in [(9, ST_RAW), (PS_MEMBER, 9)] {
            let mut e = Enc::new();
            e.u32(1);
            e.u8(REQ_PRODUCT);
            e.u8(source_tag);
            e.str("a");
            e.str("m");
            e.u8(stat_tag);
            e.u8(0);
            e.u8(0);
            assert!(matches!(
                decode_request_batch(&e.buf),
                Err(WireError::Malformed(_))
            ));
        }
    }

    /// Writer that accepts at most one byte per call, forcing
    /// `write_frame_vectored` through every partial-write resume path.
    struct TrickleWriter(Vec<u8>);

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            for b in bufs {
                if !b.is_empty() {
                    return self.write(b);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_is_byte_identical_to_sequential() {
        let payload = encode_response_batch(&sample_responses());
        let mut sequential = Vec::new();
        write_frame(&mut sequential, FrameKind::Response, 77, &payload).unwrap();

        // Vec<u8> takes the whole gather in one call…
        let mut gathered = Vec::new();
        write_frame_vectored(&mut gathered, FrameKind::Response, 77, &payload).unwrap();
        assert_eq!(gathered, sequential);

        // …and a one-byte-at-a-time writer exercises every resume point.
        let mut trickle = TrickleWriter(Vec::new());
        write_frame_vectored(&mut trickle, FrameKind::Response, 77, &payload).unwrap();
        assert_eq!(trickle.0, sequential);

        // An empty payload must not index past the header.
        let mut empty = Vec::new();
        write_frame_vectored(&mut empty, FrameKind::Request, 1, &[]).unwrap();
        let mut expect = Vec::new();
        write_frame(&mut expect, FrameKind::Request, 1, &[]).unwrap();
        assert_eq!(empty, expect);
    }

    #[test]
    fn error_payload_round_trips() {
        let payload = encode_error_payload("unsupported wire version 3");
        assert_eq!(
            decode_error_payload(&payload).unwrap(),
            "unsupported wire version 3"
        );
    }
}
