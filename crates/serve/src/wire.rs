//! The ECN1 wire protocol: framed, checksummed, versioned request/response
//! encoding for the network front end.
//!
//! The protocol is deliberately dependency-free (plain `std`, no serde on
//! the wire) and mirrors the hostile-input discipline of the `ECA1`
//! container in `exaclim-store`: every frame is length-prefixed **and**
//! capped ([`MAX_FRAME_PAYLOAD`]), every payload is CRC32-protected (the
//! same slice-by-8 [`exaclim_store::crc32`] the archives use), and the
//! decoder validates every length claim against the bytes actually
//! present *before* allocating — a hostile peer can waste its own
//! bandwidth, not this process's memory.
//!
//! ## Frame layout
//!
//! Every message is one frame; all integers are little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     magic, the literal bytes "ECN1"
//! 4       1     protocol version (2–4; this build speaks 4)
//! 5       1     frame kind: 1 = request batch, 2 = response batch,
//!               3 = error, 4 = stream fragment (version ≥ 3)
//! 6       2     kinds 1–3: reserved, must be zero
//!               kind 4: stream position — bits 0..15 are the fragment
//!               sequence number, bit 15 is the FIN flag
//! 8       8     frame id (echoed verbatim in the matching response)
//! 16      4     payload length in bytes (≤ MAX_FRAME_PAYLOAD)
//! 20      4     CRC32 of the payload bytes
//! 24      …     payload
//! ```
//!
//! Version 2 added the scenario-engine ops — product and ensemble
//! requests ([`crate::ProductDescriptor`], [`crate::ScenarioSpec`]) and
//! the product response block — plus the product-cache counters in the
//! stats reply. Version 3 added **streaming responses**: one request id
//! may be answered by several `Stream` fragments instead of a single
//! `Response` frame. The two previously-reserved header bytes carry each
//! fragment's position ([`StreamPos`]): a 15-bit sequence number
//! starting at 0 and a FIN flag on the final fragment. Concatenating the
//! fragments' CRC-checked payloads in sequence order yields **exactly**
//! the payload the same batch would produce as one `Response` frame —
//! streaming is a transport framing, invisible above
//! [`decode_response_batch`]. Version 4 added the resilience machinery:
//! an optional **per-request deadline** wrapper
//! ([`Request::WithDeadline`]) that lets the server skip work whose
//! budget already expired, and the overload/deadline/internal error
//! codes ([`ServeError::Overloaded`], [`ServeError::DeadlineExpired`],
//! [`ServeError::Internal`]) that make the retryable-vs-fatal taxonomy
//! explicit on the wire.
//!
//! Version negotiation is per connection and server-mirrored: the server
//! answers at the version of the request frame it is answering, and only
//! streams to version ≥ 3 peers. A version-2 peer keeps getting single
//! `Response` frames, byte-identical to the old wire; versions outside
//! `MIN_VERSION..=VERSION` are rejected with [`WireError::Version`]
//! before any payload is read.
//!
//! A **request** frame's payload is a batch: a `u32` count followed by
//! that many encoded [`Request`]s. The matching **response** frame echoes
//! the frame id and carries one encoded `Result<Response, ServeError>`
//! per request, in request order — the wire analogue of
//! [`crate::Server::handle_batch`]. An **error** frame reports a
//! transport-level failure (malformed frame, version mismatch) and is
//! terminal for the connection.
//!
//! Frame ids are chosen by the client (monotonically increasing in
//! [`crate::net::Client`]) and let requests pipeline: a client may write
//! several request frames before reading the first response; the server
//! answers in arrival order. Fragments of two responses never interleave
//! on one connection ([`WireError::StreamInterleaved`]).
//!
//! ## Zero-copy response bodies
//!
//! A response payload is represented as a [`ResponseBody`]: a list of
//! segments that are either small owned metadata buffers or **borrowed
//! value ranges** — shared `Arc<[f64]>` views of decoded cache chunks
//! (the same allocations the chunk cache holds for mmap-backed archives)
//! or value vectors moved out of the responses themselves. On
//! little-endian targets the wire form of an `f64` array *is* its
//! memory, so [`FrameStream`] can gather each frame's header and
//! borrowed payload slices into one vectored `writev` without ever
//! materializing the payload; per-fragment CRCs are computed
//! incrementally over the scattered parts
//! ([`exaclim_store::crc32_update`]).
//!
//! ## Example
//!
//! A request batch survives an encode/decode round trip bit-identically:
//!
//! ```
//! use exaclim_serve::wire::{self, FrameKind};
//! use exaclim_serve::{Request, SliceRequest};
//!
//! let batch = vec![
//!     Request::Slice(SliceRequest {
//!         archive: "era5".to_string(),
//!         member: "t2m".to_string(),
//!         range: 10..20,
//!     }),
//!     Request::Stats,
//! ];
//! let frame = wire::encode_frame(FrameKind::Request, 7, &wire::encode_request_batch(&batch)).unwrap();
//! let (header, payload) = wire::decode_frame(&frame).unwrap();
//! assert_eq!((header.kind, header.id), (FrameKind::Request, 7));
//! assert_eq!(wire::decode_request_batch(payload).unwrap(), batch);
//! ```

use crate::error::{ServeError, WireError};
use crate::product::{ProductData, ProductDescriptor, ProductSource, ProductStat, ScenarioSpec};
use crate::server::{
    ArchiveInfo, CatalogAnswer, CatalogQuery, EmulatorInfo, MemberInfo, Request, Response,
    ServeStats, SliceData,
};
use crate::SliceRequest;
use exaclim_climate::Dataset;
use exaclim_store::{crc32, crc32_update, ArchiveError, MemberKind};
use std::io::{IoSlice, Read, Write};
use std::ops::Range;
use std::sync::Arc;

/// Frame magic: the literal bytes `ECN1` at offset 0 of every frame.
pub const MAGIC: [u8; 4] = *b"ECN1";

/// Protocol version this build speaks (header byte 4). Version 2 added
/// the scenario-engine ops; version 3 added streaming responses
/// ([`FrameKind::Stream`]); version 4 added per-request deadlines
/// ([`Request::WithDeadline`]) and the overload/deadline/internal error
/// codes.
pub const VERSION: u8 = 4;

/// Oldest protocol version this build still accepts. Version-2 peers
/// negotiate down transparently: the server mirrors the request frame's
/// version in its replies and never streams to them.
pub const MIN_VERSION: u8 = 2;

/// Largest stream-fragment sequence number (15 bits; bit 15 of the
/// on-wire position word is the FIN flag).
pub const STREAM_SEQ_MAX: u16 = 0x7FFF;

/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 24;

/// Upper bound on one frame's payload (1 GiB), mirroring the archive
/// decode cap [`exaclim_store::format::MAX_CHUNK_RAW_LEN`]: the reader
/// rejects larger length claims *before* allocating or reading, which
/// bounds what a hostile peer can make this process buffer.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// Cap on one length-prefixed string (64 KiB) — names on the wire are
/// archive/member/emulator names and error messages, never bulk data.
/// The decoder rejects longer claims; the encoder clips longer inputs to
/// this many bytes at a char boundary, so an over-long name degrades to
/// a harmless prefix instead of a connection-fatal transport error.
pub const MAX_STR_LEN: u32 = 1 << 16;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A batch of [`Request`]s (client → server).
    Request,
    /// The batch's `Result<Response, ServeError>`s (server → client).
    Response,
    /// A terminal transport-level error report (either direction).
    Error,
    /// One fragment of a streamed response (server → client, wire
    /// version ≥ 3). The header's reserved bytes carry a [`StreamPos`];
    /// fragment payloads concatenate, in sequence order, to exactly the
    /// payload a [`FrameKind::Response`] frame would have carried.
    Stream,
}

impl FrameKind {
    /// Wire id of this kind (header byte 5).
    pub fn id(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Error => 3,
            FrameKind::Stream => 4,
        }
    }

    /// Parse a wire id.
    pub fn from_id(id: u8) -> Result<Self, WireError> {
        match id {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            3 => Ok(FrameKind::Error),
            4 => Ok(FrameKind::Stream),
            other => Err(WireError::BadFrameKind(other)),
        }
    }
}

/// Position of a [`FrameKind::Stream`] fragment within its response,
/// packed into the header's two reserved bytes as a little-endian `u16`:
/// bits 0..15 are the sequence number, bit 15 is the FIN flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPos {
    /// Fragment sequence number, starting at 0 (≤ [`STREAM_SEQ_MAX`]).
    pub seq: u16,
    /// Set on the final fragment of the response.
    pub fin: bool,
}

impl StreamPos {
    /// Pack into the on-wire position word.
    fn to_wire(self) -> u16 {
        (self.seq & STREAM_SEQ_MAX) | if self.fin { 0x8000 } else { 0 }
    }

    /// Unpack from the on-wire position word.
    fn from_wire(word: u16) -> Self {
        Self {
            seq: word & STREAM_SEQ_MAX,
            fin: word & 0x8000 != 0,
        }
    }
}

/// The decoded fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version of the frame (`MIN_VERSION..=VERSION`). The
    /// server mirrors this in its replies so version-2 peers keep
    /// receiving version-2 frames.
    pub version: u8,
    /// Frame kind.
    pub kind: FrameKind,
    /// Stream position; `Some` exactly when `kind` is
    /// [`FrameKind::Stream`] (other kinds keep the bytes reserved-zero).
    pub stream: Option<StreamPos>,
    /// Frame id, echoed in the matching response.
    pub id: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32 of the payload.
    pub crc: u32,
}

impl FrameHeader {
    /// Serialize to the fixed 24-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&MAGIC);
        h[4] = self.version;
        h[5] = self.kind.id();
        // Bytes 6..8: reserved-zero, except a stream fragment's position.
        if let Some(pos) = self.stream {
            h[6..8].copy_from_slice(&pos.to_wire().to_le_bytes());
        }
        h[8..16].copy_from_slice(&self.id.to_le_bytes());
        h[16..20].copy_from_slice(&self.len.to_le_bytes());
        h[20..24].copy_from_slice(&self.crc.to_le_bytes());
        h
    }

    /// Parse and validate the fixed 24-byte wire form: magic, version
    /// (`MIN_VERSION..=VERSION` accepted), kind, reserved/stream bytes,
    /// and the [`MAX_FRAME_PAYLOAD`] cap.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, WireError> {
        if bytes[0..4] != MAGIC {
            return Err(WireError::BadMagic([
                bytes[0], bytes[1], bytes[2], bytes[3],
            ]));
        }
        let version = bytes[4];
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(WireError::Version {
                got: version,
                want: VERSION,
            });
        }
        let kind = FrameKind::from_id(bytes[5])?;
        if kind == FrameKind::Stream && version < 3 {
            // Version 2 had no stream frames; a v2 header with kind 4 is
            // as unknown as kind 9.
            return Err(WireError::BadFrameKind(4));
        }
        let stream = if kind == FrameKind::Stream {
            Some(StreamPos::from_wire(u16::from_le_bytes(
                bytes[6..8].try_into().expect("2 bytes"),
            )))
        } else {
            if bytes[6] != 0 || bytes[7] != 0 {
                return Err(WireError::Malformed(format!(
                    "reserved header bytes are {:#04x}{:#04x}, want zero",
                    bytes[6], bytes[7]
                )));
            }
            None
        };
        let id = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            return Err(WireError::FrameTooLarge {
                len: u64::from(len),
                max: u64::from(MAX_FRAME_PAYLOAD),
            });
        }
        let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        Ok(Self {
            version,
            kind,
            stream,
            id,
            len,
            crc,
        })
    }
}

/// Assemble one complete frame (header + payload) in memory.
///
/// Fails with [`WireError::FrameTooLarge`] if `payload` exceeds
/// [`MAX_FRAME_PAYLOAD`] — the sender enforces the same cap the receiver
/// does, so an over-long batch is rejected before it ties up the socket.
pub fn encode_frame(kind: FrameKind, id: u64, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    encode_frame_v(VERSION, kind, id, payload)
}

/// [`encode_frame`] with an explicit protocol version — the server uses
/// this to mirror a version-2 peer's version in its replies.
pub fn encode_frame_v(
    version: u8,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<Vec<u8>, WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let header = FrameHeader {
        version,
        kind,
        stream: None,
        id,
        len: payload.len() as u32,
        crc: crc32(payload),
    };
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&header.encode());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Decode one complete frame from a byte buffer, returning the header and
/// a borrowed view of the checksum-verified payload. Trailing bytes after
/// the payload are an error — a frame is exactly as long as it claims.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            context: "frame header",
        });
    }
    let header = FrameHeader::decode(bytes[..HEADER_LEN].try_into().expect("header slice"))?;
    let want = HEADER_LEN
        .checked_add(header.len as usize)
        .ok_or(WireError::FrameTooLarge {
            len: u64::from(header.len),
            max: u64::from(MAX_FRAME_PAYLOAD),
        })?;
    if bytes.len() < want {
        return Err(WireError::Truncated {
            context: "frame payload",
        });
    }
    if bytes.len() > want {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after frame end",
            bytes.len() - want
        )));
    }
    let payload = &bytes[HEADER_LEN..want];
    let actual = crc32(payload);
    if actual != header.crc {
        return Err(WireError::ChecksumMismatch {
            expected: header.crc,
            actual,
        });
    }
    Ok((header, payload))
}

/// Write one frame to a stream (header, then payload). The caller is
/// responsible for flushing.
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let header = FrameHeader {
        version: VERSION,
        kind,
        stream: None,
        id,
        len: payload.len() as u32,
        crc: crc32(payload),
    };
    w.write_all(&header.encode())?;
    w.write_all(payload)?;
    Ok(())
}

/// Write one frame with a single gathered syscall where the stream
/// supports it: header and payload go out through `write_vectored`
/// instead of two sequential writes, so a small response frame reaches
/// the socket in one `writev` and never straddles two TCP segments just
/// because the header was flushed alone.
///
/// Byte-for-byte identical on the wire to [`write_frame`]; partial
/// vectored writes are resumed until the header is fully out, then any
/// payload remainder is completed with `write_all`.
pub fn write_frame_vectored(
    w: &mut impl Write,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    write_frame_vectored_v(w, VERSION, kind, id, payload)
}

/// [`write_frame_vectored`] with an explicit protocol version — the
/// [`crate::net::Client`] uses this to send frames at its negotiated
/// version when speaking to an older server.
pub fn write_frame_vectored_v(
    w: &mut impl Write,
    version: u8,
    kind: FrameKind,
    id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    let header = FrameHeader {
        version,
        kind,
        stream: None,
        id,
        len: payload.len() as u32,
        crc: crc32(payload),
    }
    .encode();
    // `write_all_vectored` is unstable, so resume partial writes by hand:
    // while any header byte is unwritten, gather the header tail and the
    // whole payload; once the cursor passes the header, finish the
    // payload tail with plain `write_all`.
    let mut written = 0usize;
    while written < HEADER_LEN {
        let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
        match w.write_vectored(&bufs) {
            Ok(0) => {
                return Err(WireError::from(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "frame write made no progress",
                )))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::from(e)),
        }
    }
    let payload_written = written - HEADER_LEN;
    if payload_written < payload.len() {
        w.write_all(&payload[payload_written..])?;
    }
    Ok(())
}

/// Read one frame from a stream: header, validation (magic, version,
/// kind, payload cap — rejected **before** the payload is read or
/// buffered), then the checksum-verified payload.
///
/// A clean EOF before the first header byte is
/// [`WireError::ConnectionClosed`]; EOF anywhere inside the frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<(FrameHeader, Vec<u8>), WireError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = r
            .read(&mut header_bytes[filled..])
            .map_err(WireError::from)?;
        if n == 0 {
            return if filled == 0 {
                Err(WireError::ConnectionClosed { peer: None })
            } else {
                Err(WireError::Truncated {
                    context: "frame header",
                })
            };
        }
        filled += n;
    }
    let header = FrameHeader::decode(&header_bytes)?;
    // Grow the payload buffer as bytes actually arrive (`take` +
    // `read_to_end` doubles from a small capacity) rather than
    // zero-filling the claimed length up front — a peer that claims
    // 1 GiB but trickles bytes ties up only the memory it has sent.
    let len = header.len as usize;
    let mut payload = Vec::new();
    let got = r
        .by_ref()
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(WireError::from)?;
    if got < len {
        return Err(WireError::Truncated {
            context: "frame payload",
        });
    }
    let actual = crc32(&payload);
    if actual != header.crc {
        return Err(WireError::ChecksumMismatch {
            expected: header.crc,
            actual,
        });
    }
    Ok((header, payload))
}

// ---------------------------------------------------------------------------
// Streaming emission and reassembly
// ---------------------------------------------------------------------------

/// Cap on gathered slices per `write_vectored` call. Kernels truncate at
/// `IOV_MAX` (1024 on Linux), and a socket accepts at most its buffer's
/// worth per call anyway — a modest cap keeps per-call setup cheap while
/// still batching a header and dozens of chunk parts into one `writev`.
pub const MAX_WRITE_IOV: usize = 64;

/// One wire frame staged for writing: the encoded 24-byte header plus
/// `(segment, byte range)` references into the [`ResponseBody`] it was
/// cut from. Payload bytes stay where they are — owned metadata runs or
/// shared chunk buffers — and go to the socket via gathered `writev`.
pub struct OutFrame {
    head: [u8; HEADER_LEN],
    parts: Vec<(usize, Range<usize>)>,
    payload_len: usize,
    /// True for the final frame of the response (the `FIN` fragment, or
    /// the sole frame of a non-streamed response).
    pub last: bool,
}

impl OutFrame {
    /// Bytes this frame puts on the wire (header + payload).
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Bytes of this frame the connection actually owns — the header
    /// plus owned metadata runs, excluding shared chunk-cache references
    /// (those cost a refcount, not a copy). This is what bounds
    /// per-connection memory while a response drains.
    pub fn owned_len(&self, body: &ResponseBody) -> usize {
        HEADER_LEN
            + self
                .parts
                .iter()
                .map(|(i, r)| match &body.segments[*i] {
                    Segment::Owned(_) => r.len(),
                    Segment::Values { .. } => 0,
                })
                .sum::<usize>()
    }

    /// Materialize the whole frame contiguously (tests and diagnostics;
    /// the write paths gather instead).
    pub fn to_bytes(&self, body: &ResponseBody) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        out.extend_from_slice(&self.head);
        for (i, r) in &self.parts {
            out.extend_from_slice(&body.segments[*i].bytes()[r.clone()]);
        }
        out
    }

    /// Gather the frame's unwritten tail (everything after `written`
    /// bytes) into `out` as borrowed I/O slices, at most `max` of them.
    pub fn remaining_slices<'a>(
        &'a self,
        body: &'a ResponseBody,
        written: usize,
        out: &mut Vec<IoSlice<'a>>,
        max: usize,
    ) {
        let mut skip = written;
        if skip < HEADER_LEN {
            out.push(IoSlice::new(&self.head[skip..]));
            skip = 0;
        } else {
            skip -= HEADER_LEN;
        }
        for (i, r) in &self.parts {
            if out.len() >= max {
                return;
            }
            let len = r.len();
            if skip >= len {
                skip -= len;
                continue;
            }
            out.push(IoSlice::new(
                &body.segments[*i].bytes()[r.start + skip..r.end],
            ));
            skip = 0;
        }
    }
}

/// Cuts a [`ResponseBody`] into wire frames: one [`FrameKind::Response`]
/// frame when the peer is version 2 or the body fits the stream chunk,
/// otherwise a sequence of [`FrameKind::Stream`] fragments whose
/// payloads concatenate to exactly the single-frame payload. Each frame
/// carries its own CRC (computed incrementally across the scattered
/// segments), so corruption is detected per fragment, not per response.
pub struct FrameStream {
    body: ResponseBody,
    kind: FrameKind,
    version: u8,
    id: u64,
    total: usize,
    /// Fragment payload size; `0` means a single non-streamed frame.
    chunk: usize,
    offset: usize,
    seg: usize,
    seg_off: usize,
    next_seq: u16,
    frames: u32,
    done: bool,
}

impl FrameStream {
    /// Stage a response for a peer speaking `peer_version`. Streams
    /// (fragments of ≈`stream_chunk` payload bytes) when the peer is
    /// version ≥ 3, streaming is enabled (`stream_chunk > 0`), and the
    /// body exceeds one chunk; otherwise emits the classic single
    /// response frame. Fails up front if the body exceeds
    /// [`MAX_FRAME_PAYLOAD`] — the cap bounds the *reassembled* payload,
    /// streamed or not, so both sides agree on what is too large.
    pub fn response(
        body: ResponseBody,
        id: u64,
        peer_version: u8,
        stream_chunk: usize,
    ) -> Result<Self, WireError> {
        let total = body.total_len();
        if total as u64 > u64::from(MAX_FRAME_PAYLOAD) {
            return Err(WireError::FrameTooLarge {
                len: total as u64,
                max: u64::from(MAX_FRAME_PAYLOAD),
            });
        }
        let chunk = if peer_version >= 3 && stream_chunk > 0 && total > stream_chunk {
            // Never emit more fragments than the 15-bit sequence space
            // holds — widen the fragment instead of overflowing seq.
            stream_chunk.max(total.div_ceil(usize::from(STREAM_SEQ_MAX) + 1))
        } else {
            0
        };
        Ok(Self {
            body,
            kind: FrameKind::Response,
            version: peer_version,
            id,
            total,
            chunk,
            offset: 0,
            seg: 0,
            seg_off: 0,
            next_seq: 0,
            frames: 0,
            done: false,
        })
    }

    /// Stage a single non-streamed frame of any kind (error frames use
    /// this).
    pub fn single(
        kind: FrameKind,
        version: u8,
        id: u64,
        body: ResponseBody,
    ) -> Result<Self, WireError> {
        let total = body.total_len();
        if total as u64 > u64::from(MAX_FRAME_PAYLOAD) {
            return Err(WireError::FrameTooLarge {
                len: total as u64,
                max: u64::from(MAX_FRAME_PAYLOAD),
            });
        }
        Ok(Self {
            body,
            kind,
            version,
            id,
            total,
            chunk: 0,
            offset: 0,
            seg: 0,
            seg_off: 0,
            next_seq: 0,
            frames: 0,
            done: false,
        })
    }

    /// Whether this response goes out as stream fragments.
    pub fn is_streamed(&self) -> bool {
        self.chunk != 0
    }

    /// Frames cut so far.
    pub fn frames_emitted(&self) -> u32 {
        self.frames
    }

    /// Reassembled payload length.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// The body frames reference — [`OutFrame`] methods need it back to
    /// resolve their segment references.
    pub fn body(&self) -> &ResponseBody {
        &self.body
    }

    /// Cut the next frame, advancing the cursor. `None` once the whole
    /// response has been emitted.
    pub fn next_frame(&mut self) -> Option<OutFrame> {
        if self.done {
            return None;
        }
        let (len, stream_pos) = if self.chunk == 0 {
            (self.total, None)
        } else {
            let len = self.chunk.min(self.total - self.offset);
            let fin = self.offset + len == self.total;
            let pos = StreamPos {
                seq: self.next_seq,
                fin,
            };
            self.next_seq += 1;
            (len, Some(pos))
        };
        // Walk segments from the cursor, collecting `len` payload bytes
        // and folding them into the fragment's CRC as they pass.
        let mut parts = Vec::new();
        let mut crc_state = 0xFFFF_FFFFu32;
        let mut need = len;
        while need > 0 {
            let seg = &self.body.segments[self.seg];
            let seg_len = seg.len();
            let take = need.min(seg_len - self.seg_off);
            if take > 0 {
                let range = self.seg_off..self.seg_off + take;
                crc_state = crc32_update(crc_state, &seg.bytes()[range.clone()]);
                parts.push((self.seg, range));
                self.seg_off += take;
                need -= take;
            }
            if self.seg_off == seg_len {
                self.seg += 1;
                self.seg_off = 0;
            }
        }
        self.offset += len;
        let last = stream_pos.is_none_or(|p| p.fin);
        if last {
            self.done = true;
        }
        let kind = if stream_pos.is_some() {
            FrameKind::Stream
        } else {
            self.kind
        };
        let head = FrameHeader {
            version: self.version,
            kind,
            stream: stream_pos,
            id: self.id,
            len: len as u32,
            crc: crc_state ^ 0xFFFF_FFFF,
        }
        .encode();
        self.frames += 1;
        Some(OutFrame {
            head,
            parts,
            payload_len: len,
            last,
        })
    }
}

/// What [`write_stream`] put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamWriteReport {
    /// Frames written.
    pub frames: u32,
    /// Total bytes written (headers + payloads).
    pub bytes: u64,
    /// Largest single-frame owned footprint (see [`OutFrame::owned_len`]).
    pub owned_peak: usize,
}

/// Drain a [`FrameStream`] to a blocking writer, each frame going out
/// through gathered `writev` calls resumed across partial writes (the
/// multi-slice generalization of [`write_frame_vectored`]). The caller
/// is responsible for flushing.
pub fn write_stream(
    w: &mut impl Write,
    s: &mut FrameStream,
) -> Result<StreamWriteReport, WireError> {
    let mut report = StreamWriteReport {
        frames: 0,
        bytes: 0,
        owned_peak: 0,
    };
    while let Some(frame) = s.next_frame() {
        let total = frame.total_len();
        report.owned_peak = report.owned_peak.max(frame.owned_len(s.body()));
        let mut written = 0usize;
        let mut bufs: Vec<IoSlice<'_>> = Vec::new();
        while written < total {
            bufs.clear();
            frame.remaining_slices(s.body(), written, &mut bufs, MAX_WRITE_IOV);
            match w.write_vectored(&bufs) {
                Ok(0) => {
                    return Err(WireError::from(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "frame write made no progress",
                    )))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::from(e)),
            }
        }
        report.frames += 1;
        report.bytes += total as u64;
        // Fault site `net.write.frame`: between stream fragments, where
        // a stall holds the peer mid-reassembly and a reset leaves it
        // with a truncated stream. Skipped after the FIN frame — the
        // stream is already complete.
        if !frame.last {
            if let Some(action) = exaclim_runtime::faults::check("net.write.frame") {
                use exaclim_runtime::FaultAction;
                match action {
                    FaultAction::Delay(d) | FaultAction::Stall(d) => std::thread::sleep(d),
                    FaultAction::Reset => {
                        return Err(WireError::Io("injected mid-stream reset".to_string()))
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(report)
}

/// Receiver-side reassembly of a streamed response: fragments must
/// arrive in sequence order on one frame id, and the payload collected
/// when `FIN` lands is bit-identical to the single-frame encoding. One
/// reassembler serves a whole connection — it resets itself after each
/// completed stream.
#[derive(Debug, Default)]
pub struct StreamReassembler {
    id: Option<u64>,
    next_seq: u16,
    buf: Vec<u8>,
}

impl StreamReassembler {
    /// A reassembler with no stream in progress.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a stream is mid-reassembly (a non-stream frame arriving
    /// now would be a protocol violation).
    pub fn in_progress(&self) -> bool {
        self.id.is_some()
    }

    /// Frame id of the stream being reassembled, if any.
    pub fn stream_id(&self) -> Option<u64> {
        self.id
    }

    /// Accept one CRC-verified stream frame. Returns the complete
    /// response payload when the `FIN` fragment lands, `None` while the
    /// stream continues, and a typed error for any sequencing violation:
    /// a first fragment not at seq 0, a duplicate/skipped/reordered seq,
    /// a foreign frame id spliced mid-stream, or reassembled growth past
    /// [`MAX_FRAME_PAYLOAD`].
    pub fn push(
        &mut self,
        header: &FrameHeader,
        payload: &[u8],
    ) -> Result<Option<Vec<u8>>, WireError> {
        let pos = header.stream.ok_or_else(|| {
            WireError::Malformed("stream frame without a stream position".to_string())
        })?;
        match self.id {
            None => {
                if pos.seq != 0 {
                    return Err(WireError::StreamSequence {
                        expected: 0,
                        got: pos.seq,
                    });
                }
                self.id = Some(header.id);
            }
            Some(id) if header.id != id => {
                return Err(WireError::StreamInterleaved {
                    expected: id,
                    got: header.id,
                })
            }
            Some(_) => {
                if pos.seq != self.next_seq {
                    return Err(WireError::StreamSequence {
                        expected: self.next_seq,
                        got: pos.seq,
                    });
                }
            }
        }
        let grown = self.buf.len() as u64 + payload.len() as u64;
        if grown > u64::from(MAX_FRAME_PAYLOAD) {
            return Err(WireError::FrameTooLarge {
                len: grown,
                max: u64::from(MAX_FRAME_PAYLOAD),
            });
        }
        self.buf.extend_from_slice(payload);
        // Saturate past the seq space: a 0x8000th fragment can only
        // mismatch (seq maxes at STREAM_SEQ_MAX), which is the right
        // outcome for a stream that long.
        self.next_seq = self.next_seq.saturating_add(1);
        if pos.fin {
            self.id = None;
            self.next_seq = 0;
            Ok(Some(std::mem::take(&mut self.buf)))
        } else {
            Ok(None)
        }
    }
}

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

/// A run of `f64` values backing a zero-copy [`Segment`]: either a
/// shared chunk-cache buffer (no copy at all — the segment holds a
/// refcount on the decoded chunk) or an owned vector moved out of a
/// [`Response`].
enum ValuesBuf {
    Arc(Arc<[f64]>),
    Vec(Vec<f64>),
}

impl ValuesBuf {
    fn as_slice(&self) -> &[f64] {
        match self {
            ValuesBuf::Arc(a) => a,
            ValuesBuf::Vec(v) => v,
        }
    }
}

/// One contiguous run of payload bytes: an owned metadata run, or a
/// borrowed view of `f64` values whose on-wire bytes are read straight
/// out of the backing buffer (little-endian hosts only; see
/// [`Segment::bytes`]).
enum Segment {
    Owned(Vec<u8>),
    Values { buf: ValuesBuf, range: Range<usize> },
}

impl Segment {
    fn len(&self) -> usize {
        match self {
            Segment::Owned(b) => b.len(),
            Segment::Values { range, .. } => range.len() * 8,
        }
    }

    /// The segment's on-wire bytes, borrowed — no copy for either
    /// variant. For `Values` this reinterprets the `f64` run as bytes,
    /// which is exactly the wire encoding (IEEE 754 bits, little-endian)
    /// on little-endian hosts; the encoder never builds a `Values`
    /// segment on big-endian hosts (it falls back to an owned copy), so
    /// the reinterpretation is always byte-order-correct here.
    fn bytes(&self) -> &[u8] {
        match self {
            Segment::Owned(b) => b,
            Segment::Values { buf, range } => {
                debug_assert!(cfg!(target_endian = "little"));
                let vals = &buf.as_slice()[range.clone()];
                // SAFETY: any 8 bytes are a valid f64 bit pattern and
                // vice versa; the pointer and length describe exactly the
                // `vals` allocation, which lives as long as `self`.
                unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), vals.len() * 8) }
            }
        }
    }
}

/// A fully encoded response payload held as segments instead of one
/// contiguous buffer: owned metadata runs interleaved with shared value
/// buffers referenced straight from the chunk cache. Concatenating the
/// segments yields exactly the payload [`encode_response_batch`]
/// produces — [`FrameStream`] fragments it for the wire without ever
/// materializing the whole thing.
pub struct ResponseBody {
    segments: Vec<Segment>,
}

impl ResponseBody {
    /// Encode a batch of responses (by value: large value vectors are
    /// moved into segments, not copied).
    pub fn from_responses(responses: Vec<Result<Response, ServeError>>) -> Self {
        let mut e = Enc::new();
        e.u32(responses.len() as u32);
        for r in responses {
            match r {
                Ok(resp) => {
                    e.u8(1);
                    encode_response(&mut e, resp);
                }
                Err(err) => {
                    e.u8(0);
                    encode_serve_error(&mut e, &err);
                }
            }
        }
        e.into_body()
    }

    /// Wrap an already-encoded payload (error payloads, diagnostics) as
    /// a one-segment body, so [`FrameStream`] can emit any frame kind.
    pub fn from_payload(payload: Vec<u8>) -> Self {
        Self {
            segments: vec![Segment::Owned(payload)],
        }
    }

    /// Total payload length in bytes.
    pub fn total_len(&self) -> usize {
        self.segments.iter().map(Segment::len).sum()
    }

    /// Materialize the contiguous payload (copies; the legacy
    /// single-frame path and tests use this).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        for s in &self.segments {
            out.extend_from_slice(s.bytes());
        }
        out
    }
}

/// Copying `Values` runs at or below this many bytes into the owned
/// metadata segment instead of keeping a borrowed segment: a 4-entry
/// iovec for 64 bytes of payload costs more than the copy.
const SMALL_VALUES_BYTES: usize = 256;

/// Append-only payload encoder (little-endian throughout). Scalar and
/// string writes accumulate in an owned buffer; value runs past
/// [`SMALL_VALUES_BYTES`] become borrowed [`Segment`]s so response
/// payloads reference chunk-cache memory instead of copying it.
struct Enc {
    segments: Vec<Segment>,
    cur: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Self {
            segments: Vec::new(),
            cur: Vec::new(),
        }
    }
    /// Seal the pending owned bytes into a segment.
    fn flush(&mut self) {
        if !self.cur.is_empty() {
            self.segments
                .push(Segment::Owned(std::mem::take(&mut self.cur)));
        }
    }
    fn into_body(mut self) -> ResponseBody {
        self.flush();
        ResponseBody {
            segments: self.segments,
        }
    }
    /// Concatenate everything into one contiguous payload (request and
    /// error payloads, which are all-metadata anyway).
    fn into_payload(self) -> Vec<u8> {
        self.into_body().to_payload()
    }
    fn u8(&mut self, v: u8) {
        self.cur.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.cur.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.cur.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.cur.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.cur.extend_from_slice(&v.to_le_bytes());
    }
    /// Length-prefixed string, clipped to [`MAX_STR_LEN`] at a char
    /// boundary: names and messages past the cap degrade to their prefix
    /// (an over-long archive name simply won't match the catalog) rather
    /// than producing a payload the peer must reject — which would
    /// escalate one bad field into a connection-fatal transport error.
    fn str(&mut self, s: &str) {
        let mut end = (MAX_STR_LEN as usize).min(s.len());
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let s = &s[..end];
        self.u32(s.len() as u32);
        self.cur.extend_from_slice(s.as_bytes());
    }
    /// Length-prefixed value array taken by value: the count goes into
    /// the owned run, the values become a borrowed segment (zero copy).
    fn values(&mut self, buf: ValuesBuf, range: Range<usize>) {
        self.u64(range.len() as u64);
        self.values_run(buf, range);
    }
    /// One un-prefixed run of values — several runs after a single
    /// count prefix concatenate into one on-wire array (the chunk-parts
    /// form of a slice response). Bit-identical to copying the values
    /// byte by byte: the wire encoding of an f64 is its little-endian
    /// bit pattern either way.
    fn values_run(&mut self, buf: ValuesBuf, range: Range<usize>) {
        if cfg!(target_endian = "big") || range.len() * 8 <= SMALL_VALUES_BYTES {
            for v in &buf.as_slice()[range] {
                self.cur.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        } else {
            self.flush();
            self.segments.push(Segment::Values { buf, range });
        }
    }
}

/// Checked payload decoder: every read validates its length claim against
/// the bytes actually remaining before touching (or allocating for) them.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed(format!(
                "{context}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }
    fn u16(&mut self, context: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self, context: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self, context: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self, context: &str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// `usize` from a `u64` field, rejecting values that cannot index
    /// memory on this target.
    fn usize(&mut self, context: &str) -> Result<usize, WireError> {
        let v = self.u64(context)?;
        usize::try_from(v)
            .map_err(|_| WireError::Malformed(format!("{context}: {v} exceeds address space")))
    }

    fn str(&mut self, context: &str) -> Result<String, WireError> {
        let len = self.u32(context)?;
        if len > MAX_STR_LEN {
            return Err(WireError::Malformed(format!(
                "{context}: string of {len} bytes exceeds the {MAX_STR_LEN}-byte cap"
            )));
        }
        let bytes = self.take(len as usize, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("{context}: invalid UTF-8")))
    }

    fn f64s(&mut self, context: &str) -> Result<Vec<f64>, WireError> {
        let count = self.u64(context)?;
        // The claim must fit in the bytes that are actually here — this is
        // the allocation guard: a hostile count of 2^60 is rejected before
        // any buffer is sized from it.
        let need = count
            .checked_mul(8)
            .ok_or_else(|| WireError::Malformed(format!("{context}: value count overflows")))?;
        if need > self.remaining() as u64 {
            return Err(WireError::Malformed(format!(
                "{context}: {count} values claimed, {} bytes remain",
                self.remaining()
            )));
        }
        let raw = self.take(need as usize, context)?;
        let mut values = Vec::with_capacity(count as usize);
        for chunk in raw.chunks_exact(8) {
            values.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().expect("8 bytes"),
            )));
        }
        Ok(values)
    }

    /// Assert the payload was consumed exactly.
    fn finish(self, context: &str) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{context}: {} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const REQ_SLICE: u8 = 1;
const REQ_EMULATE: u8 = 2;
const REQ_CATALOG: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_PRODUCT: u8 = 5;
const REQ_ENSEMBLE: u8 = 6;
const REQ_DEADLINE: u8 = 7;

const CQ_LIST_ARCHIVES: u8 = 1;
const CQ_LIST_MEMBERS: u8 = 2;
const CQ_MEMBER_INFO: u8 = 3;
const CQ_LIST_EMULATORS: u8 = 4;

// Scenario-engine tags (wire version 2): product sources and statistics.
const PS_MEMBER: u8 = 1;
const PS_ENSEMBLE: u8 = 2;

const ST_RAW: u8 = 1;
const ST_ANOMALY: u8 = 2;
const ST_MEAN_STD: u8 = 3;
const ST_TREND: u8 = 4;
const ST_PERSISTENCE: u8 = 5;
const ST_TUKEY: u8 = 6;

fn encode_scenario_spec(e: &mut Enc, spec: &ScenarioSpec) {
    e.str(&spec.emulator);
    e.u64(spec.t_max);
    e.u64(spec.seed);
    e.u32(spec.realizations);
}

fn decode_scenario_spec(d: &mut Dec) -> Result<ScenarioSpec, WireError> {
    Ok(ScenarioSpec {
        emulator: d.str("scenario emulator")?,
        t_max: d.u64("scenario t_max")?,
        seed: d.u64("scenario seed")?,
        realizations: d.u32("scenario realizations")?,
    })
}

/// Optional half-open window: a presence byte, then `start`/`end` when
/// present. The presence byte must be exactly 0 or 1 so every descriptor
/// has one canonical wire form.
fn encode_window(e: &mut Enc, window: &Option<std::ops::Range<u64>>) {
    match window {
        Some(r) => {
            e.u8(1);
            e.u64(r.start);
            e.u64(r.end);
        }
        None => e.u8(0),
    }
}

fn decode_window(d: &mut Dec, context: &str) -> Result<Option<std::ops::Range<u64>>, WireError> {
    match d.u8(context)? {
        0 => Ok(None),
        1 => {
            let start = d.u64(context)?;
            let end = d.u64(context)?;
            Ok(Some(start..end))
        }
        other => Err(WireError::Malformed(format!(
            "{context}: presence byte is {other}, want 0 or 1"
        ))),
    }
}

fn encode_product_descriptor(e: &mut Enc, desc: &ProductDescriptor) {
    match &desc.source {
        ProductSource::Member { archive, member } => {
            e.u8(PS_MEMBER);
            e.str(archive);
            e.str(member);
        }
        ProductSource::Ensemble(spec) => {
            e.u8(PS_ENSEMBLE);
            encode_scenario_spec(e, spec);
        }
    }
    match &desc.stat {
        ProductStat::Raw => e.u8(ST_RAW),
        ProductStat::Anomaly { archive, member } => {
            e.u8(ST_ANOMALY);
            e.str(archive);
            e.str(member);
        }
        ProductStat::MeanStd => e.u8(ST_MEAN_STD),
        ProductStat::Trend => e.u8(ST_TREND),
        ProductStat::Persistence { order } => {
            e.u8(ST_PERSISTENCE);
            e.u32(*order);
        }
        ProductStat::TukeyExtremes { tail_per_mille } => {
            e.u8(ST_TUKEY);
            e.u32(*tail_per_mille);
        }
    }
    encode_window(e, &desc.time);
    encode_window(e, &desc.space);
}

fn decode_product_descriptor(d: &mut Dec) -> Result<ProductDescriptor, WireError> {
    let source = match d.u8("product source tag")? {
        PS_MEMBER => ProductSource::Member {
            archive: d.str("product archive")?,
            member: d.str("product member")?,
        },
        PS_ENSEMBLE => ProductSource::Ensemble(decode_scenario_spec(d)?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown product source tag {other}"
            )))
        }
    };
    let stat = match d.u8("product stat tag")? {
        ST_RAW => ProductStat::Raw,
        ST_ANOMALY => ProductStat::Anomaly {
            archive: d.str("anomaly baseline archive")?,
            member: d.str("anomaly baseline member")?,
        },
        ST_MEAN_STD => ProductStat::MeanStd,
        ST_TREND => ProductStat::Trend,
        ST_PERSISTENCE => ProductStat::Persistence {
            order: d.u32("persistence order")?,
        },
        ST_TUKEY => ProductStat::TukeyExtremes {
            tail_per_mille: d.u32("tukey tail_per_mille")?,
        },
        other => {
            return Err(WireError::Malformed(format!(
                "unknown product stat tag {other}"
            )))
        }
    };
    let time = decode_window(d, "product time window")?;
    let space = decode_window(d, "product space window")?;
    Ok(ProductDescriptor {
        source,
        stat,
        time,
        space,
    })
}

fn encode_request(e: &mut Enc, req: &Request) {
    match req {
        Request::Slice(s) => {
            e.u8(REQ_SLICE);
            e.str(&s.archive);
            e.str(&s.member);
            e.u64(s.range.start);
            e.u64(s.range.end);
        }
        Request::Emulate {
            emulator,
            t_max,
            seed,
        } => {
            e.u8(REQ_EMULATE);
            e.str(emulator);
            e.u64(*t_max as u64);
            e.u64(*seed);
        }
        Request::Catalog(q) => {
            e.u8(REQ_CATALOG);
            match q {
                CatalogQuery::ListArchives => e.u8(CQ_LIST_ARCHIVES),
                CatalogQuery::ListMembers { archive } => {
                    e.u8(CQ_LIST_MEMBERS);
                    e.str(archive);
                }
                CatalogQuery::MemberInfo { archive, member } => {
                    e.u8(CQ_MEMBER_INFO);
                    e.str(archive);
                    e.str(member);
                }
                CatalogQuery::ListEmulators => e.u8(CQ_LIST_EMULATORS),
            }
        }
        Request::Stats => e.u8(REQ_STATS),
        Request::Product(desc) => {
            e.u8(REQ_PRODUCT);
            encode_product_descriptor(e, desc);
        }
        Request::Ensemble(spec) => {
            e.u8(REQ_ENSEMBLE);
            encode_scenario_spec(e, spec);
        }
        Request::WithDeadline { budget_ms, request } => {
            e.u8(REQ_DEADLINE);
            e.u32(*budget_ms);
            encode_request(e, request);
        }
    }
}

fn decode_request(d: &mut Dec) -> Result<Request, WireError> {
    match d.u8("request tag")? {
        REQ_SLICE => Ok(Request::Slice(SliceRequest {
            archive: d.str("slice archive")?,
            member: d.str("slice member")?,
            range: {
                let start = d.u64("slice range start")?;
                let end = d.u64("slice range end")?;
                start..end
            },
        })),
        REQ_EMULATE => Ok(Request::Emulate {
            emulator: d.str("emulate name")?,
            t_max: d.usize("emulate t_max")?,
            seed: d.u64("emulate seed")?,
        }),
        REQ_CATALOG => {
            let q = match d.u8("catalog query tag")? {
                CQ_LIST_ARCHIVES => CatalogQuery::ListArchives,
                CQ_LIST_MEMBERS => CatalogQuery::ListMembers {
                    archive: d.str("list-members archive")?,
                },
                CQ_MEMBER_INFO => CatalogQuery::MemberInfo {
                    archive: d.str("member-info archive")?,
                    member: d.str("member-info member")?,
                },
                CQ_LIST_EMULATORS => CatalogQuery::ListEmulators,
                other => {
                    return Err(WireError::Malformed(format!(
                        "unknown catalog query tag {other}"
                    )))
                }
            };
            Ok(Request::Catalog(q))
        }
        REQ_STATS => Ok(Request::Stats),
        REQ_PRODUCT => Ok(Request::Product(decode_product_descriptor(d)?)),
        REQ_ENSEMBLE => Ok(Request::Ensemble(decode_scenario_spec(d)?)),
        REQ_DEADLINE => {
            let budget_ms = d.u32("deadline budget_ms")?;
            let request = decode_request(d)?;
            // One level only: a deadline wrapping a deadline has no
            // meaning, so a nested wrapper is a protocol violation, not
            // something to silently flatten.
            if matches!(request, Request::WithDeadline { .. }) {
                return Err(WireError::Malformed("nested deadline wrapper".to_string()));
            }
            Ok(Request::WithDeadline {
                budget_ms,
                request: Box::new(request),
            })
        }
        other => Err(WireError::Malformed(format!("unknown request tag {other}"))),
    }
}

/// Encode a batch of requests as a request-frame payload.
pub fn encode_request_batch(requests: &[Request]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(requests.len() as u32);
    for r in requests {
        encode_request(&mut e, r);
    }
    e.into_payload()
}

/// Decode a request-frame payload. The whole payload must be consumed —
/// trailing bytes are malformed, mirroring the container's
/// no-trailing-garbage rule.
pub fn decode_request_batch(payload: &[u8]) -> Result<Vec<Request>, WireError> {
    let mut d = Dec::new(payload);
    let count = d.u32("request count")? as usize;
    // Every request is at least one tag byte; a count beyond the
    // remaining bytes is a lie and is rejected before any allocation
    // is sized from it.
    if count > d.remaining() {
        return Err(WireError::Malformed(format!(
            "{count} requests claimed in a {}-byte payload",
            d.remaining()
        )));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        requests.push(decode_request(&mut d)?);
    }
    d.finish("request batch")?;
    Ok(requests)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const RESP_SLICE: u8 = 1;
const RESP_EMULATE: u8 = 2;
const RESP_CATALOG: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_PRODUCT: u8 = 5;

const CA_ARCHIVES: u8 = 1;
const CA_MEMBERS: u8 = 2;
const CA_MEMBER: u8 = 3;
const CA_EMULATORS: u8 = 4;

fn encode_member_info(e: &mut Enc, m: &MemberInfo) {
    e.str(&m.name);
    e.u8(m.kind.id());
    e.u8(m.codec);
    e.u64(m.t_max);
    e.u64(m.values_per_slice);
    e.u64(m.chunks as u64);
    e.u32(m.snapshot_version);
}

fn decode_member_info(d: &mut Dec) -> Result<MemberInfo, WireError> {
    Ok(MemberInfo {
        name: d.str("member name")?,
        kind: match d.u8("member kind")? {
            0 => MemberKind::Field,
            1 => MemberKind::Snapshot,
            other => return Err(WireError::Malformed(format!("unknown member kind {other}"))),
        },
        codec: d.u8("member codec")?,
        t_max: d.u64("member t_max")?,
        values_per_slice: d.u64("member values_per_slice")?,
        chunks: d.usize("member chunk count")?,
        snapshot_version: d.u32("member snapshot version")?,
    })
}

fn encode_response(e: &mut Enc, resp: Response) {
    match resp {
        Response::Slice(s) => {
            e.u8(RESP_SLICE);
            e.str(&s.archive);
            e.str(&s.member);
            e.u64(s.range.start);
            e.u64(s.range.end);
            e.u64(s.values_per_slice);
            let n = s.values.len();
            e.values(ValuesBuf::Vec(s.values), 0..n);
        }
        Response::Emulate(ds) => {
            e.u8(RESP_EMULATE);
            e.u64(ds.t_max as u64);
            e.u64(ds.npoints as u64);
            e.u64(ds.ntheta as u64);
            e.u64(ds.nphi as u64);
            e.i64(ds.start_year);
            e.u64(ds.tau as u64);
            let n = ds.data.len();
            e.values(ValuesBuf::Vec(ds.data), 0..n);
        }
        Response::Catalog(a) => {
            e.u8(RESP_CATALOG);
            match &a {
                CatalogAnswer::Archives(list) => {
                    e.u8(CA_ARCHIVES);
                    e.u32(list.len() as u32);
                    for a in list {
                        e.str(&a.name);
                        e.u64(a.members as u64);
                        e.u64(a.total_len);
                    }
                }
                CatalogAnswer::Members(list) => {
                    e.u8(CA_MEMBERS);
                    e.u32(list.len() as u32);
                    for m in list {
                        encode_member_info(e, m);
                    }
                }
                CatalogAnswer::Member(m) => {
                    e.u8(CA_MEMBER);
                    encode_member_info(e, m);
                }
                CatalogAnswer::Emulators(list) => {
                    e.u8(CA_EMULATORS);
                    e.u32(list.len() as u32);
                    for em in list {
                        e.str(&em.name);
                        e.u64(em.lmax as u64);
                        e.u64(em.grid.0 as u64);
                        e.u64(em.grid.1 as u64);
                        e.u64(em.parameter_bytes as u64);
                    }
                }
            }
        }
        Response::Stats(s) => {
            e.u8(RESP_STATS);
            e.u64(s.slices);
            e.u64(s.emulations);
            e.u64(s.catalog_queries);
            e.u64(s.errors);
            e.u64(s.batches);
            e.u64(s.chunk_touches);
            e.u64(s.chunk_fetches);
            e.u64(s.chunk_decodes);
            e.u64(s.products);
            e.u64(s.product_computes);
            e.u64(s.busy_nanos);
            e.u64(s.deadline_expired);
        }
        Response::Product(p) => {
            e.u8(RESP_PRODUCT);
            e.u32(p.realizations);
            e.u64(p.rows);
            e.u64(p.values_per_row);
            let n = p.values.len();
            e.values(ValuesBuf::Vec(p.values), 0..n);
        }
    }
}

/// Guard a `u32` element count against the bytes remaining: each element
/// encodes to at least `min_bytes`, so any larger claim is hostile.
fn check_count(d: &Dec, count: u32, min_bytes: usize, context: &str) -> Result<usize, WireError> {
    let need = (count as u64).saturating_mul(min_bytes as u64);
    if need > d.remaining() as u64 {
        return Err(WireError::Malformed(format!(
            "{context}: {count} elements claimed, {} bytes remain",
            d.remaining()
        )));
    }
    Ok(count as usize)
}

fn decode_response(d: &mut Dec) -> Result<Response, WireError> {
    match d.u8("response tag")? {
        RESP_SLICE => {
            let archive = d.str("slice archive")?;
            let member = d.str("slice member")?;
            let start = d.u64("slice range start")?;
            let end = d.u64("slice range end")?;
            let values_per_slice = d.u64("slice values_per_slice")?;
            let values = d.f64s("slice values")?;
            Ok(Response::Slice(SliceData {
                archive,
                member,
                range: start..end,
                values_per_slice,
                values,
            }))
        }
        RESP_EMULATE => {
            let t_max = d.usize("dataset t_max")?;
            let npoints = d.usize("dataset npoints")?;
            let ntheta = d.usize("dataset ntheta")?;
            let nphi = d.usize("dataset nphi")?;
            let start_year = d.i64("dataset start_year")?;
            let tau = d.usize("dataset tau")?;
            let data = d.f64s("dataset values")?;
            let expect = t_max
                .checked_mul(npoints)
                .ok_or_else(|| WireError::Malformed("dataset geometry overflows".to_string()))?;
            if data.len() != expect {
                return Err(WireError::Malformed(format!(
                    "dataset carries {} values for {t_max}×{npoints} geometry",
                    data.len()
                )));
            }
            Ok(Response::Emulate(Dataset {
                data,
                t_max,
                npoints,
                ntheta,
                nphi,
                start_year,
                tau,
            }))
        }
        RESP_CATALOG => {
            let answer = match d.u8("catalog answer tag")? {
                CA_ARCHIVES => {
                    let count = d.u32("archive count")?;
                    let count = check_count(d, count, 4 + 8 + 8, "archive list")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(ArchiveInfo {
                            name: d.str("archive name")?,
                            members: d.usize("archive member count")?,
                            total_len: d.u64("archive total_len")?,
                        });
                    }
                    CatalogAnswer::Archives(list)
                }
                CA_MEMBERS => {
                    let count = d.u32("member count")?;
                    let count = check_count(d, count, 4 + 2 + 8 * 3 + 4, "member list")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(decode_member_info(d)?);
                    }
                    CatalogAnswer::Members(list)
                }
                CA_MEMBER => CatalogAnswer::Member(decode_member_info(d)?),
                CA_EMULATORS => {
                    let count = d.u32("emulator count")?;
                    let count = check_count(d, count, 4 + 8 * 4, "emulator list")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(EmulatorInfo {
                            name: d.str("emulator name")?,
                            lmax: d.usize("emulator lmax")?,
                            grid: (d.usize("emulator ntheta")?, d.usize("emulator nphi")?),
                            parameter_bytes: d.usize("emulator parameter bytes")?,
                        });
                    }
                    CatalogAnswer::Emulators(list)
                }
                other => {
                    return Err(WireError::Malformed(format!(
                        "unknown catalog answer tag {other}"
                    )))
                }
            };
            Ok(Response::Catalog(answer))
        }
        RESP_STATS => Ok(Response::Stats(ServeStats {
            slices: d.u64("stats slices")?,
            emulations: d.u64("stats emulations")?,
            catalog_queries: d.u64("stats catalog_queries")?,
            errors: d.u64("stats errors")?,
            batches: d.u64("stats batches")?,
            chunk_touches: d.u64("stats chunk_touches")?,
            chunk_fetches: d.u64("stats chunk_fetches")?,
            chunk_decodes: d.u64("stats chunk_decodes")?,
            products: d.u64("stats products")?,
            product_computes: d.u64("stats product_computes")?,
            busy_nanos: d.u64("stats busy_nanos")?,
            deadline_expired: d.u64("stats deadline_expired")?,
        })),
        RESP_PRODUCT => {
            let realizations = d.u32("product realizations")?;
            let rows = d.u64("product rows")?;
            let values_per_row = d.u64("product values_per_row")?;
            let values = d.f64s("product values")?;
            let expect = u64::from(realizations)
                .checked_mul(rows)
                .and_then(|v| v.checked_mul(values_per_row))
                .ok_or_else(|| WireError::Malformed("product geometry overflows".to_string()))?;
            if values.len() as u64 != expect {
                return Err(WireError::Malformed(format!(
                    "product carries {} values for {realizations}×{rows}×{values_per_row} geometry",
                    values.len()
                )));
            }
            Ok(Response::Product(ProductData {
                realizations,
                rows,
                values_per_row,
                values,
            }))
        }
        other => Err(WireError::Malformed(format!(
            "unknown response tag {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------------

const SE_ARCHIVE: u8 = 1;
const SE_EMULATION: u8 = 2;
const SE_UNKNOWN_ARCHIVE: u8 = 3;
const SE_UNKNOWN_EMULATOR: u8 = 4;
const SE_BAD_REQUEST: u8 = 5;
const SE_OVERLOADED: u8 = 6;
const SE_DEADLINE_EXPIRED: u8 = 7;
const SE_INTERNAL: u8 = 8;

const AE_IO: u8 = 1;
const AE_BAD_MAGIC: u8 = 2;
const AE_BAD_VERSION: u8 = 3;
const AE_CORRUPT: u8 = 4;
const AE_TRAILING: u8 = 5;
const AE_TRUNCATED_CHUNK: u8 = 6;
const AE_CHECKSUM: u8 = 7;
const AE_UNKNOWN_CODEC: u8 = 8;
const AE_MEMBER_NOT_FOUND: u8 = 9;
const AE_DUPLICATE_MEMBER: u8 = 10;
const AE_BAD_REQUEST: u8 = 11;

fn encode_archive_error(e: &mut Enc, err: &ArchiveError) {
    match err {
        ArchiveError::Io(m) => {
            e.u8(AE_IO);
            e.str(m);
        }
        ArchiveError::BadMagic => e.u8(AE_BAD_MAGIC),
        ArchiveError::BadVersion(v) => {
            e.u8(AE_BAD_VERSION);
            e.u16(*v);
        }
        ArchiveError::Corrupt(m) => {
            e.u8(AE_CORRUPT);
            e.str(m);
        }
        ArchiveError::TrailingBytes { expected, actual } => {
            e.u8(AE_TRAILING);
            e.u64(*expected);
            e.u64(*actual);
        }
        ArchiveError::TruncatedChunk { member, chunk } => {
            e.u8(AE_TRUNCATED_CHUNK);
            e.str(member);
            e.u64(*chunk as u64);
        }
        ArchiveError::ChecksumMismatch { member, chunk } => {
            e.u8(AE_CHECKSUM);
            e.str(member);
            e.u64(*chunk as u64);
        }
        ArchiveError::UnknownCodec(id) => {
            e.u8(AE_UNKNOWN_CODEC);
            e.u8(*id);
        }
        ArchiveError::MemberNotFound(n) => {
            e.u8(AE_MEMBER_NOT_FOUND);
            e.str(n);
        }
        ArchiveError::DuplicateMember(n) => {
            e.u8(AE_DUPLICATE_MEMBER);
            e.str(n);
        }
        ArchiveError::BadRequest(m) => {
            e.u8(AE_BAD_REQUEST);
            e.str(m);
        }
    }
}

fn decode_archive_error(d: &mut Dec) -> Result<ArchiveError, WireError> {
    Ok(match d.u8("archive error tag")? {
        AE_IO => ArchiveError::Io(d.str("io message")?),
        AE_BAD_MAGIC => ArchiveError::BadMagic,
        AE_BAD_VERSION => ArchiveError::BadVersion(d.u16("bad version")?),
        AE_CORRUPT => ArchiveError::Corrupt(d.str("corrupt message")?),
        AE_TRAILING => ArchiveError::TrailingBytes {
            expected: d.u64("trailing expected")?,
            actual: d.u64("trailing actual")?,
        },
        AE_TRUNCATED_CHUNK => ArchiveError::TruncatedChunk {
            member: d.str("truncated member")?,
            chunk: d.usize("truncated chunk")?,
        },
        AE_CHECKSUM => ArchiveError::ChecksumMismatch {
            member: d.str("checksum member")?,
            chunk: d.usize("checksum chunk")?,
        },
        AE_UNKNOWN_CODEC => ArchiveError::UnknownCodec(d.u8("codec id")?),
        AE_MEMBER_NOT_FOUND => ArchiveError::MemberNotFound(d.str("missing member")?),
        AE_DUPLICATE_MEMBER => ArchiveError::DuplicateMember(d.str("duplicate member")?),
        AE_BAD_REQUEST => ArchiveError::BadRequest(d.str("bad request message")?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown archive error tag {other}"
            )))
        }
    })
}

fn encode_serve_error(e: &mut Enc, err: &ServeError) {
    match err {
        ServeError::Archive(inner) => {
            e.u8(SE_ARCHIVE);
            encode_archive_error(e, inner);
        }
        ServeError::Emulation(m) => {
            e.u8(SE_EMULATION);
            e.str(m);
        }
        ServeError::UnknownArchive(n) => {
            e.u8(SE_UNKNOWN_ARCHIVE);
            e.str(n);
        }
        ServeError::UnknownEmulator(n) => {
            e.u8(SE_UNKNOWN_EMULATOR);
            e.str(n);
        }
        ServeError::BadRequest(m) => {
            e.u8(SE_BAD_REQUEST);
            e.str(m);
        }
        ServeError::Overloaded { retry_after_ms } => {
            e.u8(SE_OVERLOADED);
            e.u32(*retry_after_ms);
        }
        ServeError::DeadlineExpired => e.u8(SE_DEADLINE_EXPIRED),
        ServeError::Internal(m) => {
            e.u8(SE_INTERNAL);
            e.str(m);
        }
    }
}

fn decode_serve_error(d: &mut Dec) -> Result<ServeError, WireError> {
    Ok(match d.u8("serve error tag")? {
        SE_ARCHIVE => ServeError::Archive(decode_archive_error(d)?),
        SE_EMULATION => ServeError::Emulation(d.str("emulation message")?),
        SE_UNKNOWN_ARCHIVE => ServeError::UnknownArchive(d.str("unknown archive")?),
        SE_UNKNOWN_EMULATOR => ServeError::UnknownEmulator(d.str("unknown emulator")?),
        SE_BAD_REQUEST => ServeError::BadRequest(d.str("bad request message")?),
        SE_OVERLOADED => ServeError::Overloaded {
            retry_after_ms: d.u32("overloaded retry_after_ms")?,
        },
        SE_DEADLINE_EXPIRED => ServeError::DeadlineExpired,
        SE_INTERNAL => ServeError::Internal(d.str("internal message")?),
        other => {
            return Err(WireError::Malformed(format!(
                "unknown serve error tag {other}"
            )))
        }
    })
}

/// Encode a batch's responses as a response-frame payload: one
/// `Result<Response, ServeError>` per request, in request order.
///
/// Convenience over [`ResponseBody::from_responses`] — both paths run
/// the same encoder, so a streamed body reassembles to exactly these
/// bytes.
pub fn encode_response_batch(responses: &[Result<Response, ServeError>]) -> Vec<u8> {
    ResponseBody::from_responses(responses.to_vec()).to_payload()
}

/// Encode a batch of server [`Reply`](crate::server::Reply)s. The slice
/// variant writes the same bytes a materialized [`Response::Slice`]
/// would — metadata, one total value count, then each chunk part as a
/// borrowed segment referencing the decoded chunk's `Arc` directly, so
/// slice payloads are never copied out of the chunk cache.
pub(crate) fn encode_reply_batch(replies: Vec<crate::server::Reply>) -> ResponseBody {
    use crate::server::Reply;
    let mut e = Enc::new();
    e.u32(replies.len() as u32);
    for r in replies {
        match r {
            Reply::Full(Ok(resp)) => {
                e.u8(1);
                encode_response(&mut e, resp);
            }
            Reply::Full(Err(err)) => {
                e.u8(0);
                encode_serve_error(&mut e, &err);
            }
            Reply::Slice {
                archive,
                member,
                range,
                values_per_slice,
                parts,
            } => {
                e.u8(1);
                e.u8(RESP_SLICE);
                e.str(&archive);
                e.str(&member);
                e.u64(range.start);
                e.u64(range.end);
                e.u64(values_per_slice);
                let total: usize = parts.iter().map(|(_, r)| r.len()).sum();
                e.u64(total as u64);
                for (chunk, r) in parts {
                    e.values_run(ValuesBuf::Arc(chunk), r);
                }
            }
        }
    }
    e.into_body()
}

/// Decode a response-frame payload (exact inverse of
/// [`encode_response_batch`]; the round trip is bit-identical, errors
/// included).
pub fn decode_response_batch(
    payload: &[u8],
) -> Result<Vec<Result<Response, ServeError>>, WireError> {
    let mut d = Dec::new(payload);
    let count = d.u32("response count")? as usize;
    if count > d.remaining() {
        return Err(WireError::Malformed(format!(
            "{count} responses claimed in a {}-byte payload",
            d.remaining()
        )));
    }
    let mut responses = Vec::with_capacity(count);
    for _ in 0..count {
        match d.u8("result tag")? {
            1 => responses.push(Ok(decode_response(&mut d)?)),
            0 => responses.push(Err(decode_serve_error(&mut d)?)),
            other => return Err(WireError::Malformed(format!("unknown result tag {other}"))),
        }
    }
    d.finish("response batch")?;
    Ok(responses)
}

/// Encode an error-frame payload: the transport failure's display text
/// (clipped to [`MAX_STR_LEN`] at a char boundary).
pub fn encode_error_payload(message: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.str(message);
    e.into_payload()
}

/// Decode an error-frame payload back to its message.
pub fn decode_error_payload(payload: &[u8]) -> Result<String, WireError> {
    let mut d = Dec::new(payload);
    let msg = d.str("error message")?;
    d.finish("error payload")?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Slice(SliceRequest {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
                range: 3..17,
            }),
            Request::Emulate {
                emulator: "sst-model".to_string(),
                t_max: 365,
                seed: 0xDEAD_BEEF,
            },
            Request::Catalog(CatalogQuery::ListArchives),
            Request::Catalog(CatalogQuery::ListMembers {
                archive: "era5".to_string(),
            }),
            Request::Catalog(CatalogQuery::MemberInfo {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
            }),
            Request::Catalog(CatalogQuery::ListEmulators),
            Request::Stats,
            Request::Product(ProductDescriptor {
                source: ProductSource::Member {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                },
                stat: ProductStat::Anomaly {
                    archive: "era5".to_string(),
                    member: "t2m-baseline".to_string(),
                },
                time: Some(10..50),
                space: None,
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Ensemble(ScenarioSpec {
                    emulator: "sst-model".to_string(),
                    t_max: 730,
                    seed: 7,
                    realizations: 16,
                }),
                stat: ProductStat::Trend,
                time: None,
                space: Some(3..9),
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Member {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                },
                stat: ProductStat::Persistence { order: 3 },
                time: Some(0..64),
                space: Some(0..4),
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Ensemble(ScenarioSpec {
                    emulator: "sst-model".to_string(),
                    t_max: 365,
                    seed: 0,
                    realizations: 4,
                }),
                stat: ProductStat::TukeyExtremes { tail_per_mille: 25 },
                time: None,
                space: None,
            }),
            Request::Product(ProductDescriptor {
                source: ProductSource::Member {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                },
                stat: ProductStat::MeanStd,
                time: None,
                space: None,
            }),
            Request::Ensemble(ScenarioSpec {
                emulator: "sst-model".to_string(),
                t_max: 365,
                seed: 0xC0FFEE,
                realizations: 32,
            }),
            Request::WithDeadline {
                budget_ms: 250,
                request: Box::new(Request::Slice(SliceRequest {
                    archive: "era5".to_string(),
                    member: "t2m".to_string(),
                    range: 0..8,
                })),
            },
            Request::WithDeadline {
                budget_ms: 0,
                request: Box::new(Request::Stats),
            },
        ]
    }

    fn sample_responses() -> Vec<Result<Response, ServeError>> {
        vec![
            Ok(Response::Slice(SliceData {
                archive: "era5".to_string(),
                member: "t2m".to_string(),
                range: 3..17,
                values_per_slice: 4,
                values: (0..56).map(|i| 260.0 + f64::from(i) * 0.25).collect(),
            })),
            Ok(Response::Emulate(Dataset {
                data: vec![1.5, -2.5, f64::MIN_POSITIVE, 0.0, -0.0, f64::MAX],
                t_max: 3,
                npoints: 2,
                ntheta: 1,
                nphi: 2,
                start_year: -44,
                tau: 365,
            })),
            Ok(Response::Catalog(CatalogAnswer::Archives(vec![
                ArchiveInfo {
                    name: "era5".to_string(),
                    members: 2,
                    total_len: 12345,
                },
            ]))),
            Ok(Response::Catalog(CatalogAnswer::Member(MemberInfo {
                name: "t2m".to_string(),
                kind: MemberKind::Field,
                codec: 3,
                t_max: 100,
                values_per_slice: 64,
                chunks: 7,
                snapshot_version: 0,
            }))),
            Ok(Response::Catalog(CatalogAnswer::Emulators(vec![
                EmulatorInfo {
                    name: "sst-model".to_string(),
                    lmax: 31,
                    grid: (32, 64),
                    parameter_bytes: 8192,
                },
            ]))),
            Ok(Response::Stats(ServeStats {
                slices: 1,
                emulations: 2,
                catalog_queries: 3,
                errors: 4,
                batches: 5,
                chunk_touches: 6,
                chunk_fetches: 7,
                chunk_decodes: 8,
                products: 9,
                product_computes: 10,
                busy_nanos: 11,
                deadline_expired: 12,
            })),
            Ok(Response::Product(ProductData {
                realizations: 2,
                rows: 3,
                values_per_row: 2,
                values: (0..12).map(|i| f64::from(i) * 0.5 - 1.0).collect(),
            })),
            Err(ServeError::UnknownArchive("gone".to_string())),
            Err(ServeError::Archive(ArchiveError::ChecksumMismatch {
                member: "t2m".to_string(),
                chunk: 3,
            })),
            Err(ServeError::Archive(ArchiveError::TrailingBytes {
                expected: 100,
                actual: 120,
            })),
            Err(ServeError::Emulation("singular matrix".to_string())),
            Err(ServeError::BadRequest("no".to_string())),
            Err(ServeError::Overloaded { retry_after_ms: 40 }),
            Err(ServeError::DeadlineExpired),
            Err(ServeError::Internal("worker panicked".to_string())),
        ]
    }

    #[test]
    fn request_batch_round_trips() {
        let batch = sample_requests();
        let payload = encode_request_batch(&batch);
        assert_eq!(decode_request_batch(&payload).unwrap(), batch);
    }

    #[test]
    fn nested_deadline_wrapper_is_malformed() {
        // Hand-assemble a deadline wrapping a deadline — the encoder
        // cannot produce this (the type is a single wrapper level by
        // construction in practice), so build the payload manually.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes()); // batch count
        payload.push(7); // REQ_DEADLINE
        payload.extend_from_slice(&5u32.to_le_bytes()); // budget_ms
        payload.push(7); // nested REQ_DEADLINE
        payload.extend_from_slice(&5u32.to_le_bytes());
        payload.push(4); // REQ_STATS
        assert!(matches!(
            decode_request_batch(&payload),
            Err(WireError::Malformed(m)) if m.contains("nested deadline")
        ));
    }

    #[test]
    fn response_batch_round_trips_bit_identically() {
        let batch = sample_responses();
        let payload = encode_response_batch(&batch);
        assert_eq!(decode_response_batch(&payload).unwrap(), batch);
    }

    #[test]
    fn frame_round_trips() {
        let payload = encode_request_batch(&sample_requests());
        let frame = encode_frame(FrameKind::Request, 42, &payload).unwrap();
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let (header, got) = decode_frame(&frame).unwrap();
        assert_eq!(header.kind, FrameKind::Request);
        assert_eq!(header.id, 42);
        assert_eq!(got, &payload[..]);

        // And through a stream.
        let mut cursor = std::io::Cursor::new(frame);
        let (header2, got2) = read_frame(&mut cursor).unwrap();
        assert_eq!(header2, header);
        assert_eq!(got2, payload);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_frame(FrameKind::Request, 0, b"xy").unwrap();
        frame[0] = b'X';
        assert!(matches!(decode_frame(&frame), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = encode_frame(FrameKind::Request, 0, b"xy").unwrap();
        frame[4] = VERSION + 1;
        assert_eq!(
            decode_frame(&frame).unwrap_err(),
            WireError::Version {
                got: VERSION + 1,
                want: VERSION
            }
        );
        // Below the negotiation floor is equally rejected…
        frame[4] = MIN_VERSION - 1;
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            WireError::Version { .. }
        ));
        // …but the previous protocol version still decodes.
        frame[4] = MIN_VERSION;
        let (header, _) = decode_frame(&frame).unwrap();
        assert_eq!(header.version, MIN_VERSION);
    }

    #[test]
    fn stream_frames_require_version_3() {
        let body = ResponseBody::from_responses(sample_responses());
        let mut s = FrameStream::response(body, 7, VERSION, 64).unwrap();
        assert!(s.is_streamed());
        let mut frame = {
            let f = s.next_frame().unwrap();
            f.to_bytes(s.body())
        };
        // The fragment decodes as-is…
        let (header, _) = decode_frame(&frame).unwrap();
        assert_eq!(header.kind, FrameKind::Stream);
        assert_eq!(header.stream, Some(StreamPos { seq: 0, fin: false }));
        // …but the same bytes claiming version 2 are an unknown kind:
        // version-2 peers never negotiated stream frames.
        frame[4] = 2;
        assert_eq!(
            decode_frame(&frame).unwrap_err(),
            WireError::BadFrameKind(4)
        );
    }

    #[test]
    fn oversized_length_claim_is_rejected_before_reading() {
        let mut header = FrameHeader {
            version: VERSION,
            kind: FrameKind::Request,
            stream: None,
            id: 0,
            len: 0,
            crc: 0,
        }
        .encode();
        header[16..20].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        // read_frame sees only the header — the reject happens without the
        // (absent) payload ever being requested or allocated.
        let mut cursor = std::io::Cursor::new(header.to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let payload = encode_request_batch(&sample_requests());
        let mut frame = encode_frame(FrameKind::Request, 9, &payload).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let payload = encode_request_batch(&sample_requests());
        let frame = encode_frame(FrameKind::Request, 1, &payload).unwrap();
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_value_count_is_rejected_without_allocation() {
        // A slice response claiming 2^56 values in a tiny payload: the
        // decoder must fail on the length check, not size a buffer from
        // the claim.
        let mut e = Enc::new();
        e.u32(1); // one response
        e.u8(1); // ok
        e.u8(RESP_SLICE);
        e.str("a");
        e.str("m");
        e.u64(0);
        e.u64(1);
        e.u64(1);
        e.u64(1 << 56); // hostile count, then no values at all
        let err = decode_response_batch(&e.into_payload()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut payload = encode_request_batch(&sample_requests());
        payload.push(0);
        assert!(matches!(
            decode_request_batch(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn dataset_geometry_must_match_its_values() {
        let mut e = Enc::new();
        e.u8(RESP_EMULATE);
        e.u64(10); // t_max
        e.u64(10); // npoints — claims 100 values
        e.u64(2);
        e.u64(5);
        e.i64(2000);
        e.u64(365);
        e.values(ValuesBuf::Vec(vec![1.0, 2.0]), 0..2); // … but carries 2
        let payload = e.into_payload();
        let mut d = Dec::new(&payload);
        assert!(matches!(
            decode_response(&mut d),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn over_long_strings_clip_at_a_char_boundary_instead_of_poisoning() {
        // 65535 ASCII bytes then a multi-byte char straddling the cap: the
        // encoder must clip below the cap without splitting the char, and
        // the result must still decode (to the prefix) on the other side.
        let name = "x".repeat((MAX_STR_LEN - 1) as usize) + "éé";
        let batch = vec![Request::Emulate {
            emulator: name.clone(),
            t_max: 1,
            seed: 0,
        }];
        let decoded = decode_request_batch(&encode_request_batch(&batch)).unwrap();
        let Request::Emulate { emulator, .. } = &decoded[0] else {
            panic!()
        };
        assert_eq!(emulator.as_str(), &name[..(MAX_STR_LEN - 1) as usize]);

        // Error-frame messages clip the same way.
        let msg = "m".repeat(MAX_STR_LEN as usize + 100);
        let decoded = decode_error_payload(&encode_error_payload(&msg)).unwrap();
        assert_eq!(decoded.len(), MAX_STR_LEN as usize);
    }

    #[test]
    fn product_geometry_must_match_its_values() {
        let mut e = Enc::new();
        e.u8(RESP_PRODUCT);
        e.u32(4); // realizations
        e.u64(5); // rows — claims 4×5×2 = 40 values
        e.u64(2); // values_per_row
        e.values(ValuesBuf::Vec(vec![1.0, 2.0, 3.0]), 0..3); // … but carries 3
        let payload = e.into_payload();
        let mut d = Dec::new(&payload);
        assert!(matches!(
            decode_response(&mut d),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn product_geometry_overflow_is_rejected() {
        let mut e = Enc::new();
        e.u8(RESP_PRODUCT);
        e.u32(u32::MAX);
        e.u64(u64::MAX); // realizations × rows overflows u64
        e.u64(2);
        e.values(ValuesBuf::Vec(Vec::new()), 0..0);
        let payload = e.into_payload();
        let mut d = Dec::new(&payload);
        assert!(matches!(
            decode_response(&mut d),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn window_presence_byte_must_be_canonical() {
        // A descriptor whose time-window presence byte is 2: exactly one
        // wire form per descriptor, so anything but 0/1 is malformed.
        let mut e = Enc::new();
        e.u32(1);
        e.u8(REQ_PRODUCT);
        e.u8(PS_MEMBER);
        e.str("a");
        e.str("m");
        e.u8(ST_RAW);
        e.u8(2); // hostile presence byte
        let err = decode_request_batch(&e.into_payload()).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn unknown_product_tags_are_typed_errors() {
        for (source_tag, stat_tag) in [(9, ST_RAW), (PS_MEMBER, 9)] {
            let mut e = Enc::new();
            e.u32(1);
            e.u8(REQ_PRODUCT);
            e.u8(source_tag);
            e.str("a");
            e.str("m");
            e.u8(stat_tag);
            e.u8(0);
            e.u8(0);
            assert!(matches!(
                decode_request_batch(&e.into_payload()),
                Err(WireError::Malformed(_))
            ));
        }
    }

    /// Writer that accepts at most one byte per call, forcing
    /// `write_frame_vectored` through every partial-write resume path.
    struct TrickleWriter(Vec<u8>);

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            for b in bufs {
                if !b.is_empty() {
                    return self.write(b);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_is_byte_identical_to_sequential() {
        let payload = encode_response_batch(&sample_responses());
        let mut sequential = Vec::new();
        write_frame(&mut sequential, FrameKind::Response, 77, &payload).unwrap();

        // Vec<u8> takes the whole gather in one call…
        let mut gathered = Vec::new();
        write_frame_vectored(&mut gathered, FrameKind::Response, 77, &payload).unwrap();
        assert_eq!(gathered, sequential);

        // …and a one-byte-at-a-time writer exercises every resume point.
        let mut trickle = TrickleWriter(Vec::new());
        write_frame_vectored(&mut trickle, FrameKind::Response, 77, &payload).unwrap();
        assert_eq!(trickle.0, sequential);

        // An empty payload must not index past the header.
        let mut empty = Vec::new();
        write_frame_vectored(&mut empty, FrameKind::Request, 1, &[]).unwrap();
        let mut expect = Vec::new();
        write_frame(&mut expect, FrameKind::Request, 1, &[]).unwrap();
        assert_eq!(empty, expect);
    }

    #[test]
    fn error_payload_round_trips() {
        let payload = encode_error_payload("unsupported wire version 3");
        assert_eq!(
            decode_error_payload(&payload).unwrap(),
            "unsupported wire version 3"
        );
    }

    #[test]
    fn segmented_body_matches_contiguous_encoding() {
        let batch = sample_responses();
        let body = ResponseBody::from_responses(batch.clone());
        assert_eq!(body.to_payload(), encode_response_batch(&batch));
        assert_eq!(body.total_len(), encode_response_batch(&batch).len());
    }

    #[test]
    fn streamed_fragments_reassemble_bit_identically() {
        let batch = sample_responses();
        let expect = encode_response_batch(&batch);
        // Sweep fragment sizes across the awkward boundaries: 1 byte,
        // primes, exactly-total, larger-than-total (single frame).
        for chunk in [1usize, 7, 64, 333, expect.len() - 1, expect.len()] {
            let body = ResponseBody::from_responses(batch.clone());
            let mut s = FrameStream::response(body, 99, VERSION, chunk).unwrap();
            let mut reasm = StreamReassembler::new();
            let mut got = None;
            let mut frames = 0u32;
            while let Some(frame) = s.next_frame() {
                frames += 1;
                let bytes = frame.to_bytes(s.body());
                let (header, payload) = decode_frame(&bytes).unwrap();
                assert_eq!(header.id, 99);
                if s.is_streamed() {
                    assert_eq!(header.kind, FrameKind::Stream);
                    assert!(payload.len() <= chunk.max(1), "fragment over chunk");
                    if let Some(done) = reasm.push(&header, payload).unwrap() {
                        got = Some(done);
                    }
                } else {
                    assert_eq!(header.kind, FrameKind::Response);
                    got = Some(payload.to_vec());
                }
            }
            assert_eq!(frames, s.frames_emitted());
            assert_eq!(got.as_deref(), Some(&expect[..]), "chunk {chunk}");
        }
    }

    #[test]
    fn version_2_peers_get_a_single_response_frame() {
        let batch = sample_responses();
        let body = ResponseBody::from_responses(batch.clone());
        // A chunk far smaller than the body would stream to a v3 peer…
        let mut s = FrameStream::response(body, 5, 2, 16).unwrap();
        assert!(!s.is_streamed());
        let frame = s.next_frame().unwrap();
        assert!(frame.last);
        assert!(s.next_frame().is_none());
        // …and the v2 frame is byte-identical to the legacy encoder's.
        let expect = encode_frame_v(2, FrameKind::Response, 5, &encode_response_batch(&batch));
        assert_eq!(frame.to_bytes(s.body()), expect.unwrap());
    }

    #[test]
    fn write_stream_survives_trickle_and_matches_to_bytes() {
        let batch = sample_responses();
        let expect: Vec<u8> = {
            let mut s =
                FrameStream::response(ResponseBody::from_responses(batch.clone()), 3, VERSION, 100)
                    .unwrap();
            let mut all = Vec::new();
            while let Some(f) = s.next_frame() {
                all.extend_from_slice(&f.to_bytes(s.body()));
            }
            all
        };
        for chunk in [100usize, 0] {
            // chunk 0 disables streaming — single frame, same machinery.
            let mut s = FrameStream::response(
                ResponseBody::from_responses(batch.clone()),
                3,
                VERSION,
                chunk,
            )
            .unwrap();
            let mut trickle = TrickleWriter(Vec::new());
            let report = write_stream(&mut trickle, &mut s).unwrap();
            assert_eq!(report.frames, s.frames_emitted());
            assert_eq!(report.bytes as usize, trickle.0.len());
            // Every frame's owned footprint stays below header + small
            // metadata runs — far below the payload itself.
            assert!(report.owned_peak < report.bytes as usize);
            if chunk == 100 {
                assert_eq!(trickle.0, expect);
            }
        }
    }

    #[test]
    fn reassembler_rejects_sequencing_violations() {
        let batch = sample_responses();
        let mut s =
            FrameStream::response(ResponseBody::from_responses(batch), 11, VERSION, 64).unwrap();
        let mut frames = Vec::new();
        while let Some(f) = s.next_frame() {
            frames.push(f.to_bytes(s.body()));
        }
        assert!(frames.len() >= 3, "need several fragments for this test");
        let decode = |bytes: &[u8]| {
            let (h, p) = decode_frame(bytes).unwrap();
            (h, p.to_vec())
        };

        // First fragment must be seq 0.
        let (h1, p1) = decode(&frames[1]);
        let mut r = StreamReassembler::new();
        assert_eq!(
            r.push(&h1, &p1).unwrap_err(),
            WireError::StreamSequence {
                expected: 0,
                got: 1
            }
        );

        // Duplicate seq.
        let (h0, p0) = decode(&frames[0]);
        let mut r = StreamReassembler::new();
        r.push(&h0, &p0).unwrap();
        assert_eq!(
            r.push(&h0, &p0).unwrap_err(),
            WireError::StreamSequence {
                expected: 1,
                got: 0
            }
        );

        // Skipped seq.
        let (h2, p2) = decode(&frames[2]);
        let mut r = StreamReassembler::new();
        r.push(&h0, &p0).unwrap();
        assert_eq!(
            r.push(&h2, &p2).unwrap_err(),
            WireError::StreamSequence {
                expected: 1,
                got: 2
            }
        );

        // Foreign id spliced mid-stream.
        let mut r = StreamReassembler::new();
        r.push(&h0, &p0).unwrap();
        let mut alien = h1;
        alien.id = 999;
        assert_eq!(
            r.push(&alien, &p1).unwrap_err(),
            WireError::StreamInterleaved {
                expected: 11,
                got: 999
            }
        );

        // The happy path still completes after all that rejection.
        let mut r = StreamReassembler::new();
        let mut done = None;
        for f in &frames {
            let (h, p) = decode(f);
            if let Some(out) = r.push(&h, &p).unwrap() {
                done = Some(out);
            }
        }
        assert!(done.is_some());
        assert!(!r.in_progress());
    }
}
