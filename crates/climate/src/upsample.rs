//! Grid up-sampling by separable cubic splines (paper §IV.A).
//!
//! The paper up-scales 0.25° ERA5 to the grids of band-limits 1,440 / 2,880
//! / 5,219 with spline interpolation. Here: a natural cubic spline along
//! co-latitude (non-periodic, poles at the ends) and a periodic cubic spline
//! along longitude, applied separably.

use exaclim_mathkit::spline::{upsample_periodic, CubicSpline};

/// Up-sample a `ntheta × nphi` equiangular field (poles included) by integer
/// `factor` in both directions. The output grid has
/// `(ntheta−1)·factor + 1` rings and `nphi·factor` longitudes, and contains
/// the input samples exactly at the coarse positions.
pub fn upsample_field(
    field: &[f64],
    ntheta: usize,
    nphi: usize,
    factor: usize,
) -> (Vec<f64>, usize, usize) {
    assert_eq!(field.len(), ntheta * nphi);
    assert!(factor >= 1);
    assert!(
        ntheta >= 4 && nphi >= 4,
        "spline upsampling needs ≥ 4 samples per axis"
    );
    if factor == 1 {
        return (field.to_vec(), ntheta, nphi);
    }
    let fine_nphi = nphi * factor;
    let fine_ntheta = (ntheta - 1) * factor + 1;
    // Pass 1: periodic spline along longitude, per ring.
    let mut stage = vec![0.0f64; ntheta * fine_nphi];
    for i in 0..ntheta {
        let row = &field[i * nphi..(i + 1) * nphi];
        let up = upsample_periodic(row, factor);
        stage[i * fine_nphi..(i + 1) * fine_nphi].copy_from_slice(&up);
    }
    // Pass 2: natural spline along co-latitude, per fine longitude.
    let mut out = vec![0.0f64; fine_ntheta * fine_nphi];
    let mut col = vec![0.0f64; ntheta];
    for j in 0..fine_nphi {
        for i in 0..ntheta {
            col[i] = stage[i * fine_nphi + j];
        }
        let sp = CubicSpline::uniform(0.0, 1.0, &col);
        for fi in 0..fine_ntheta {
            out[fi * fine_nphi + j] = sp.eval(fi as f64 / factor as f64);
        }
    }
    (out, fine_ntheta, fine_nphi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(ntheta: usize, nphi: usize) -> Vec<f64> {
        let mut f = Vec::with_capacity(ntheta * nphi);
        for i in 0..ntheta {
            let t = std::f64::consts::PI * i as f64 / (ntheta - 1) as f64;
            for j in 0..nphi {
                let p = 2.0 * std::f64::consts::PI * j as f64 / nphi as f64;
                f.push(280.0 + 20.0 * t.sin() * (2.0 * p).cos() + 5.0 * (3.0 * t).cos());
            }
        }
        f
    }

    #[test]
    fn output_dimensions() {
        let f = smooth_field(9, 16);
        let (up, nt, np) = upsample_field(&f, 9, 16, 4);
        assert_eq!(nt, 33);
        assert_eq!(np, 64);
        assert_eq!(up.len(), 33 * 64);
    }

    #[test]
    fn coarse_samples_preserved() {
        let f = smooth_field(9, 16);
        let (up, _nt, np) = upsample_field(&f, 9, 16, 3);
        for i in 0..9 {
            for j in 0..16 {
                let fine = up[(i * 3) * np + j * 3];
                let coarse = f[i * 16 + j];
                assert!(
                    (fine - coarse).abs() < 1e-9,
                    "({i},{j}): {fine} vs {coarse}"
                );
            }
        }
    }

    #[test]
    fn interpolant_tracks_smooth_truth() {
        let (ntheta, nphi) = (17, 32);
        let f = smooth_field(ntheta, nphi);
        let (up, fnt, fnp) = upsample_field(&f, ntheta, nphi, 4);
        let mut max_err = 0.0f64;
        for fi in 0..fnt {
            let t = std::f64::consts::PI * fi as f64 / (fnt - 1) as f64;
            for fj in 0..fnp {
                let p = 2.0 * std::f64::consts::PI * fj as f64 / fnp as f64;
                let truth = 280.0 + 20.0 * t.sin() * (2.0 * p).cos() + 5.0 * (3.0 * t).cos();
                max_err = max_err.max((up[fi * fnp + fj] - truth).abs());
            }
        }
        assert!(max_err < 0.25, "spline error too large: {max_err}");
    }

    #[test]
    fn factor_one_is_identity() {
        let f = smooth_field(6, 8);
        let (up, nt, np) = upsample_field(&f, 6, 8, 1);
        assert_eq!((nt, np), (6, 8));
        assert_eq!(up, f);
    }

    #[test]
    fn era5_upsampling_ratios_match_paper_bandlimits() {
        // 721×1440 (L=720) doubled → 1441×2880 (L=1440), doubled again →
        // 2881×5760 (L=2880): the paper's upsampling chain.
        let (nt, np, factor) = (721usize, 1440usize, 2usize);
        let fine_nt = (nt - 1) * factor + 1;
        let fine_np = np * factor;
        assert_eq!(fine_nt, 1441);
        assert_eq!(fine_np, 2880);
        assert_eq!(fine_nt - 1, 1440, "supports band-limit 1440");
    }
}
