//! Synthetic ERA5-like surface-temperature ensembles.
//!
//! Fields are built from the same ingredients the emulator models (eq. 1–2):
//! a deterministic mean (climatology + seasonal/diurnal harmonics +
//! forcing-driven trend) plus a stochastic component with genuine
//! spatio-temporal structure — AR(1) in time on spherical-harmonic
//! coefficients with a power-law spectrum, land/ocean variance modulation in
//! grid space. Every code path the emulator trains on is therefore
//! exercised: periodic terms, trend response, temporal dependence, and
//! longitude-anisotropic spatial covariance.

use crate::landsea::land_fraction;
use exaclim_mathkit::rng::StandardNormal;
use exaclim_sht::{HarmonicCoeffs, ShtPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

// The stats crate is not a dependency (it sits above us); a minimal forcing
// re-implementation would duplicate logic, so we inline the tiny shim here.
mod exaclim_stats_shim {
    /// Annual forcing used by the generator: the same accelerating
    /// log-CO₂ ramp as `exaclim_stats::ForcingSeries::historical_like`.
    #[derive(Debug, Clone)]
    pub struct ForcingSeries;
    impl ForcingSeries {
        /// Forcing in W/m² at `year`.
        pub fn at(year: i64) -> f64 {
            let t = (year - 1850) as f64;
            let conc = 278.0 + 145.0 * (t / 172.0).max(0.0).powf(2.2);
            5.35 * (conc / 278.0_f64).ln()
        }
    }
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticEra5Config {
    /// Co-latitude rings (poles included).
    pub ntheta: usize,
    /// Longitudes.
    pub nphi: usize,
    /// Band-limit of the stochastic component.
    pub lmax: usize,
    /// Steps per year: 12 monthly, 365 daily, 8760 hourly.
    pub tau: usize,
    /// First simulated year.
    pub start_year: i64,
    /// AR(1) persistence of the weather component.
    pub ar_phi: f64,
    /// Stochastic standard deviation over oceans, in kelvin.
    pub sigma_ocean: f64,
    /// Multiplier of the stochastic std over land (continentality).
    pub land_sigma_factor: f64,
    /// RNG seed; ensemble member `r` uses `seed + r`.
    pub seed: u64,
}

impl SyntheticEra5Config {
    /// A small daily configuration suitable for tests and examples.
    pub fn small_daily(lmax: usize) -> Self {
        Self {
            ntheta: lmax + 2,
            nphi: 2 * lmax + 1,
            lmax,
            tau: 365,
            start_year: 1990,
            ar_phi: 0.75,
            sigma_ocean: 1.2,
            land_sigma_factor: 2.2,
            seed: 0xC11A11E,
        }
    }
}

/// A generated ensemble: time-major fields plus the geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// `data[t · npoints + p]`, kelvin.
    pub data: Vec<f64>,
    /// Time steps.
    pub t_max: usize,
    /// Grid points per field (`ntheta · nphi`).
    pub npoints: usize,
    /// Co-latitude rings.
    pub ntheta: usize,
    /// Longitudes.
    pub nphi: usize,
    /// Calendar year of step 0.
    pub start_year: i64,
    /// Steps per year.
    pub tau: usize,
}

impl Dataset {
    /// Borrow the field at step `t`.
    pub fn field(&self, t: usize) -> &[f64] {
        &self.data[t * self.npoints..(t + 1) * self.npoints]
    }

    /// Global area-unweighted mean of field `t` (diagnostic).
    pub fn field_mean(&self, t: usize) -> f64 {
        let f = self.field(t);
        f.iter().sum::<f64>() / f.len() as f64
    }
}

/// The generator. Holds the SHT plan and the AR(1) coefficient state.
pub struct SyntheticEra5 {
    cfg: SyntheticEra5Config,
    plan: ShtPlan,
    /// Per-degree innovation std — power-law spectrum `C_ℓ ∝ (1+ℓ)^{-2.5}`.
    spectrum_std: Vec<f64>,
    /// Climatology, land mask, trend sensitivity per grid point.
    climatology: Vec<f64>,
    land: Vec<f64>,
    sensitivity: Vec<f64>,
}

impl SyntheticEra5 {
    /// Build the generator (precomputes the SHT plan and static fields).
    pub fn new(cfg: SyntheticEra5Config) -> Self {
        assert!(cfg.ntheta > cfg.lmax, "generator grid must satisfy Nθ > L");
        assert!(
            cfg.nphi >= 2 * cfg.lmax - 1,
            "generator grid must satisfy Nϕ ≥ 2L−1"
        );
        assert!((0.0..1.0).contains(&cfg.ar_phi));
        let plan = ShtPlan::equiangular(cfg.lmax, cfg.ntheta, cfg.nphi);
        let spectrum_std = (0..cfg.lmax)
            .map(|l| (1.0 + l as f64).powf(-1.25)) // std; power C_ℓ ∝ ℓ^{-2.5}
            .collect();
        let g = plan.grid();
        let np = g.nphi();
        let mut climatology = Vec::with_capacity(g.len());
        let mut land = Vec::with_capacity(g.len());
        let mut sensitivity = Vec::with_capacity(g.len());
        for i in 0..g.ntheta() {
            let theta = g.theta(i);
            for j in 0..np {
                let phi = g.phi(j);
                let lf = land_fraction(theta, phi);
                // Warm equator (~300 K), cold poles (~250 K), land slightly
                // more extreme.
                let base = 250.0 + 50.0 * theta.sin().powi(2) - 4.0 * lf;
                // Polar amplification of the warming trend.
                let sens = 0.35 + 0.45 * theta.cos().powi(2) + 0.15 * lf;
                climatology.push(base);
                land.push(lf);
                sensitivity.push(sens);
            }
        }
        Self {
            cfg,
            plan,
            spectrum_std,
            climatology,
            land,
            sensitivity,
        }
    }

    /// Grid points per field.
    pub fn npoints(&self) -> usize {
        self.plan.field_len()
    }

    /// Deterministic mean field at step `t` (0-based).
    pub fn mean_field(&self, t: usize) -> Vec<f64> {
        let cfg = &self.cfg;
        let year = cfg.start_year + (t / cfg.tau) as i64;
        let year_frac = (t % cfg.tau) as f64 / cfg.tau as f64;
        let forcing = exaclim_stats_shim::ForcingSeries::at(year);
        let season = (2.0 * std::f64::consts::PI * year_frac).cos();
        // Hourly runs also get a diurnal harmonic.
        let diurnal = if cfg.tau >= 8760 {
            (2.0 * std::f64::consts::PI * (t % 24) as f64 / 24.0).cos()
        } else {
            0.0
        };
        let g = self.plan.grid();
        let np = g.nphi();
        let mut out = Vec::with_capacity(self.npoints());
        for i in 0..g.ntheta() {
            let theta = g.theta(i);
            // Seasonal amplitude grows poleward and over land; sign flips
            // across the equator (cosθ > 0 north).
            let hemi = theta.cos();
            for j in 0..np {
                let p = i * np + j;
                let amp = (10.0 + 8.0 * self.land[p]) * hemi;
                let m = self.climatology[p]
                    + amp * season
                    + 3.0 * self.land[p] * diurnal
                    + self.sensitivity[p] * forcing;
                out.push(m);
            }
        }
        out
    }

    /// Generate one ensemble member of `t_max` steps.
    pub fn generate_member(&self, member: u64, t_max: usize) -> Dataset {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(member));
        let mut sn = StandardNormal::new();
        let np = self.npoints();
        let mut data = vec![0.0f64; t_max * np];
        // AR(1) state on coefficients, stationary initialization.
        let mut coeffs = HarmonicCoeffs::zeros(cfg.lmax);
        self.draw_innovation(&mut coeffs, 1.0, &mut sn, &mut rng);
        let phi = cfg.ar_phi;
        let innov_scale = (1.0 - phi * phi).sqrt();
        for t in 0..t_max {
            if t > 0 {
                // f_t = φ f_{t−1} + √(1−φ²) ξ_t — stationary unit marginal.
                let mut next = HarmonicCoeffs::zeros(cfg.lmax);
                self.draw_innovation(&mut next, innov_scale, &mut sn, &mut rng);
                for (c, n) in coeffs.as_mut_slice().iter_mut().zip(next.as_slice()) {
                    *c = c.scale(phi) + *n;
                }
            }
            let z = self.plan.synthesis(&coeffs);
            let mean = self.mean_field(t);
            let row = &mut data[t * np..(t + 1) * np];
            for p in 0..np {
                let sigma = cfg.sigma_ocean * (1.0 + (cfg.land_sigma_factor - 1.0) * self.land[p]);
                row[p] = mean[p] + sigma * z[p];
            }
        }
        Dataset {
            data,
            t_max,
            npoints: np,
            ntheta: cfg.ntheta,
            nphi: cfg.nphi,
            start_year: cfg.start_year,
            tau: cfg.tau,
        }
    }

    /// Draw spectrum-shaped Gaussian coefficients into `coeffs`, scaled by
    /// `scale`.
    fn draw_innovation(
        &self,
        coeffs: &mut HarmonicCoeffs,
        scale: f64,
        sn: &mut StandardNormal,
        rng: &mut StdRng,
    ) {
        use exaclim_mathkit::Complex64;
        let lmax = self.cfg.lmax;
        for l in 0..lmax {
            let std = self.spectrum_std[l] * scale;
            for m in 0..=l {
                let re = sn.sample(rng) * std;
                let im = if m == 0 {
                    0.0
                } else {
                    sn.sample(rng) * std * std::f64::consts::FRAC_1_SQRT_2
                };
                let re = if m == 0 {
                    re
                } else {
                    re * std::f64::consts::FRAC_1_SQRT_2
                };
                coeffs.set(l, m, Complex64::new(re, im));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticEra5 {
        SyntheticEra5::new(SyntheticEra5Config::small_daily(12))
    }

    #[test]
    fn fields_are_plausible_temperatures() {
        let g = small();
        let d = g.generate_member(0, 30);
        for t in 0..30 {
            for &v in d.field(t) {
                assert!((180.0..340.0).contains(&v), "temperature {v} K implausible");
            }
        }
    }

    #[test]
    fn ensemble_members_differ_but_share_climate() {
        let g = small();
        let a = g.generate_member(0, 10);
        let b = g.generate_member(1, 10);
        let mut diff = 0.0f64;
        for (x, y) in a.data.iter().zip(&b.data) {
            diff = diff.max((x - y).abs());
        }
        assert!(diff > 0.1, "members must differ in weather");
        // Global means agree to within weather noise.
        assert!((a.field_mean(0) - b.field_mean(0)).abs() < 2.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = small();
        let a = g.generate_member(3, 5);
        let b = g.generate_member(3, 5);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn seasonal_cycle_has_opposite_phase_across_hemispheres() {
        let g = small();
        let cfg = SyntheticEra5Config::small_daily(12);
        // Compare means half a year apart in each hemisphere.
        let north_ring = 2usize;
        let south_ring = cfg.ntheta - 3;
        let winter = g.mean_field(0);
        let summer = g.mean_field(cfg.tau / 2);
        let np = cfg.nphi;
        let n_jan: f64 = winter[north_ring * np..(north_ring + 1) * np].iter().sum();
        let n_jul: f64 = summer[north_ring * np..(north_ring + 1) * np].iter().sum();
        let s_jan: f64 = winter[south_ring * np..(south_ring + 1) * np].iter().sum();
        let s_jul: f64 = summer[south_ring * np..(south_ring + 1) * np].iter().sum();
        // Step 0 is "January": north warm phase (cos 0 = +1 with positive
        // amplitude × hemi>0) — sign matters less than the opposition:
        assert!(
            (n_jul - n_jan) * (s_jul - s_jan) < 0.0,
            "hemispheres must be out of phase: ΔN={}, ΔS={}",
            n_jul - n_jan,
            s_jul - s_jan
        );
    }

    #[test]
    fn warming_trend_is_present() {
        let g = small();
        // Mean temperature 30 years apart, same phase of year.
        let t0 = g.mean_field(0);
        let t30 = g.mean_field(30 * 365);
        let m0: f64 = t0.iter().sum::<f64>() / t0.len() as f64;
        let m30: f64 = t30.iter().sum::<f64>() / t30.len() as f64;
        assert!(m30 > m0, "forcing ramp must warm the planet: {m0} -> {m30}");
        assert!(m30 - m0 < 3.0, "warming magnitude plausible");
    }

    #[test]
    fn weather_component_is_temporally_correlated() {
        let g = small();
        let d = g.generate_member(0, 200);
        // Deseasonalize crudely by differencing against the mean field.
        let p = d.npoints / 2;
        let series: Vec<f64> = (0..200)
            .map(|t| d.field(t)[p] - g.mean_field(t)[p])
            .collect();
        let r = exaclim_mathkit::stats::acf(&series, 1);
        assert!(r[1] > 0.4, "AR(1) persistence visible: acf1={}", r[1]);
    }

    #[test]
    fn land_points_are_noisier_than_ocean() {
        let g = small();
        let d = g.generate_member(0, 300);
        let cfg = SyntheticEra5Config::small_daily(12);
        let np = cfg.nphi;
        // Find the land-est and ocean-est points on a mid-latitude ring.
        let ring = cfg.ntheta / 3;
        let (mut best_land, mut best_ocean) = (ring * np, ring * np);
        for j in 0..np {
            let p = ring * np + j;
            if g.land[p] > g.land[best_land] {
                best_land = p;
            }
            if g.land[p] < g.land[best_ocean] {
                best_ocean = p;
            }
        }
        let var = |p: usize| {
            let s: Vec<f64> = (0..300)
                .map(|t| d.field(t)[p] - g.mean_field(t)[p])
                .collect();
            exaclim_mathkit::stats::variance(&s)
        };
        let vl = var(best_land);
        let vo = var(best_ocean);
        assert!(vl > vo, "land var {vl} must exceed ocean var {vo}");
    }
}
