//! Compact binary serialization of [`Dataset`]s.
//!
//! Simulation archives are stored as f32 (the ERA5/CMIP convention the
//! storage model assumes); this module writes a small self-describing
//! container — magic, version, geometry header, then the field payload in
//! little-endian f32 — and reads it back. Used by the examples to stage
//! training data on disk and by the storage accounting to measure real
//! archive bytes.

use crate::generator::Dataset;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// File magic: "XCLM".
const MAGIC: u32 = 0x584C_434Du32.swap_bytes(); // stored LE as b"MCLX"-safe tag
/// Container version.
const VERSION: u16 = 1;

/// Errors from decoding a dataset container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u16),
    /// Payload shorter than the header promises.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an exaclim dataset (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            DecodeError::Truncated => write!(f, "truncated payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a dataset into the archive container (f32 payload).
pub fn encode_dataset(d: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(40 + d.data.len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(d.t_max as u64);
    buf.put_u32_le(d.ntheta as u32);
    buf.put_u32_le(d.nphi as u32);
    buf.put_i64_le(d.start_year);
    buf.put_u32_le(d.tau as u32);
    for &v in &d.data {
        buf.put_f32_le(v as f32);
    }
    buf.freeze()
}

/// Decode a container back into a [`Dataset`] (values widened to f64).
pub fn decode_dataset(mut raw: Bytes) -> Result<Dataset, DecodeError> {
    if raw.remaining() < 36 {
        return Err(DecodeError::Truncated);
    }
    if raw.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = raw.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let _flags = raw.get_u16_le();
    let t_max = raw.get_u64_le() as usize;
    let ntheta = raw.get_u32_le() as usize;
    let nphi = raw.get_u32_le() as usize;
    let start_year = raw.get_i64_le();
    let tau = raw.get_u32_le() as usize;
    let npoints = ntheta * nphi;
    let need = t_max * npoints * 4;
    if raw.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    let mut data = Vec::with_capacity(t_max * npoints);
    for _ in 0..t_max * npoints {
        data.push(raw.get_f32_le() as f64);
    }
    Ok(Dataset { data, t_max, npoints, ntheta, nphi, start_year, tau })
}

/// Archive size in bytes of a dataset in this container.
pub fn encoded_len(d: &Dataset) -> usize {
    36 + d.data.len() * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{SyntheticEra5, SyntheticEra5Config};

    fn sample() -> Dataset {
        let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(8));
        generator.generate_member(0, 20)
    }

    #[test]
    fn roundtrip_preserves_geometry_and_values_to_f32() {
        let d = sample();
        let raw = encode_dataset(&d);
        assert_eq!(raw.len(), encoded_len(&d));
        let back = decode_dataset(raw).unwrap();
        assert_eq!(back.t_max, d.t_max);
        assert_eq!((back.ntheta, back.nphi), (d.ntheta, d.nphi));
        assert_eq!(back.start_year, d.start_year);
        assert_eq!(back.tau, d.tau);
        for (a, b) in d.data.iter().zip(&back.data) {
            // f32 storage: relative error ≤ 2^-24.
            assert!(((a - b) / a).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode_dataset(Bytes::from_static(b"not a dataset at all....123456789abcdef0"))
                .unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            decode_dataset(Bytes::from_static(b"xx")).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn rejects_truncated_payload() {
        let d = sample();
        let raw = encode_dataset(&d);
        let cut = raw.slice(0..raw.len() - 10);
        assert_eq!(decode_dataset(cut).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn rejects_future_version() {
        let d = sample();
        let mut raw = BytesMut::from(&encode_dataset(&d)[..]);
        raw[4] = 99; // version byte (LE)
        assert_eq!(decode_dataset(raw.freeze()).unwrap_err(), DecodeError::BadVersion(99));
    }

    #[test]
    fn disk_roundtrip() {
        let d = sample();
        let path = std::env::temp_dir().join("exaclim_io_test.xclm");
        std::fs::write(&path, encode_dataset(&d)).unwrap();
        let raw = Bytes::from(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).ok();
        let back = decode_dataset(raw).unwrap();
        assert_eq!(back.t_max, d.t_max);
    }
}
