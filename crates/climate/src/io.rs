//! Binary serialization of [`Dataset`]s.
//!
//! Two containers are supported:
//!
//! * **XCLM v1** (legacy, this module): magic, version, geometry header,
//!   then the whole field payload as little-endian f32 — no chunking, no
//!   compression, no checksums. Kept for backward compatibility and as
//!   the storage-model baseline (the ERA5/CMIP "archive at f32"
//!   convention).
//! * **ECA1** (`exaclim-store`): chunked, codec-compressed, per-chunk
//!   CRC32-checksummed members. [`dataset_to_eca1`]/[`dataset_from_eca1`]
//!   bridge [`Dataset`] to it, and [`convert_xclm_to_eca1`] migrates
//!   legacy blobs.

use crate::generator::Dataset;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use exaclim_store::{ArchiveError, ArchiveReader, ArchiveWriter, Codec, FieldMeta, MemberKind};

/// File magic: the literal bytes `XCLM` at offset 0.
const MAGIC: [u8; 4] = *b"XCLM";
/// Magic emitted by earlier releases: the intent was `XCLM`, but the
/// obfuscated constant (`0x584C_434Du32.swap_bytes()` written LE) landed
/// the bytes on disk as `XLCM`. Decoding accepts both so files written
/// before the fix stay readable; encoding always writes [`MAGIC`].
const LEGACY_MAGIC: [u8; 4] = *b"XLCM";
/// Container version.
const VERSION: u16 = 1;

/// Member name used for the field when a dataset is stored as ECA1.
pub const ECA1_FIELD_MEMBER: &str = "field";
/// Default time steps per ECA1 chunk.
pub const ECA1_DEFAULT_CHUNK_T: usize = 32;

/// Errors from decoding a dataset container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u16),
    /// Payload shorter than the header promises.
    Truncated,
    /// Bytes left over after the payload the header promises.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an exaclim dataset (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            DecodeError::Truncated => write!(f, "truncated payload"),
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the field payload")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a dataset into the legacy XCLM container (f32 payload).
pub fn encode_dataset(d: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(40 + d.data.len() * 4);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u64_le(d.t_max as u64);
    buf.put_u32_le(d.ntheta as u32);
    buf.put_u32_le(d.nphi as u32);
    buf.put_i64_le(d.start_year);
    buf.put_u32_le(d.tau as u32);
    for &v in &d.data {
        buf.put_f32_le(v as f32);
    }
    buf.freeze()
}

/// Decode an XCLM container back into a [`Dataset`] (values widened to
/// f64). The container must end exactly at the payload: trailing bytes
/// are rejected rather than silently ignored.
pub fn decode_dataset(mut raw: Bytes) -> Result<Dataset, DecodeError> {
    if raw.remaining() < 36 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    raw.copy_to_slice(&mut magic);
    if magic != MAGIC && magic != LEGACY_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = raw.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let _flags = raw.get_u16_le();
    let t_max = raw.get_u64_le() as usize;
    let ntheta = raw.get_u32_le() as usize;
    let nphi = raw.get_u32_le() as usize;
    let start_year = raw.get_i64_le();
    let tau = raw.get_u32_le() as usize;
    // Header fields are untrusted: size them with checked arithmetic so a
    // hostile header cannot overflow (debug panic / release wrap-around).
    let npoints = ntheta.checked_mul(nphi).ok_or(DecodeError::Truncated)?;
    let need = t_max
        .checked_mul(npoints)
        .and_then(|v| v.checked_mul(4))
        .ok_or(DecodeError::Truncated)?;
    if raw.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    if raw.remaining() > need {
        return Err(DecodeError::TrailingBytes(raw.remaining() - need));
    }
    let mut data = Vec::with_capacity(t_max * npoints);
    for _ in 0..t_max * npoints {
        data.push(raw.get_f32_le() as f64);
    }
    Ok(Dataset {
        data,
        t_max,
        npoints,
        ntheta,
        nphi,
        start_year,
        tau,
    })
}

/// Archive size in bytes of a dataset in the XCLM container.
pub fn encoded_len(d: &Dataset) -> usize {
    36 + d.data.len() * 4
}

// ------------------------------------------------------------------ ECA1

/// Errors from converting between containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The legacy XCLM side failed.
    Legacy(DecodeError),
    /// The ECA1 side failed.
    Archive(ArchiveError),
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::Legacy(e) => write!(f, "XCLM: {e}"),
            ConvertError::Archive(e) => write!(f, "ECA1: {e}"),
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<DecodeError> for ConvertError {
    fn from(e: DecodeError) -> Self {
        ConvertError::Legacy(e)
    }
}

impl From<ArchiveError> for ConvertError {
    fn from(e: ArchiveError) -> Self {
        ConvertError::Archive(e)
    }
}

/// Grid/time metadata of a dataset, as stored in an ECA1 member.
pub fn dataset_meta(d: &Dataset) -> FieldMeta {
    FieldMeta {
        ntheta: d.ntheta,
        nphi: d.nphi,
        start_year: d.start_year,
        tau: d.tau,
    }
}

/// Encode a dataset as a single-member ECA1 archive with the given codec.
pub fn dataset_to_eca1(d: &Dataset, codec: Codec) -> Result<Bytes, ArchiveError> {
    let mut w = ArchiveWriter::new(std::io::Cursor::new(Vec::new()))?;
    w.add_field(
        ECA1_FIELD_MEMBER,
        codec,
        dataset_meta(d),
        d.npoints,
        ECA1_DEFAULT_CHUNK_T.min(d.t_max.max(1)),
        &d.data,
    )?;
    let (cursor, _) = w.finish()?;
    Ok(Bytes::from(cursor.into_inner()))
}

/// Decode the first field member of an ECA1 archive into a [`Dataset`].
pub fn dataset_from_eca1(raw: Bytes) -> Result<Dataset, ArchiveError> {
    let mut r = ArchiveReader::new(std::io::Cursor::new(raw))?;
    let (name, meta, t_max, vps) = {
        let m = r
            .members()
            .iter()
            .find(|m| m.kind == MemberKind::Field)
            .ok_or_else(|| ArchiveError::MemberNotFound("<any field>".to_string()))?;
        (
            m.name.clone(),
            m.meta,
            m.t_max as usize,
            m.values_per_slice as usize,
        )
    };
    if meta.ntheta * meta.nphi != vps {
        return Err(ArchiveError::Corrupt(format!(
            "member `{name}` stores {vps} values per slice on a {}×{} grid",
            meta.ntheta, meta.nphi
        )));
    }
    let data = r.read_field_all(&name)?;
    Ok(Dataset {
        data,
        t_max,
        npoints: vps,
        ntheta: meta.ntheta,
        nphi: meta.nphi,
        start_year: meta.start_year,
        tau: meta.tau,
    })
}

/// Migrate a legacy XCLM blob to ECA1. With an f32-width codec (`F32` /
/// `F32Shuffle`) the conversion is lossless: XCLM already quantized the
/// field to f32.
pub fn convert_xclm_to_eca1(raw: Bytes, codec: Codec) -> Result<Bytes, ConvertError> {
    let dataset = decode_dataset(raw)?;
    Ok(dataset_to_eca1(&dataset, codec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{SyntheticEra5, SyntheticEra5Config};

    fn sample() -> Dataset {
        let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(8));
        generator.generate_member(0, 20)
    }

    #[test]
    fn roundtrip_preserves_geometry_and_values_to_f32() {
        let d = sample();
        let raw = encode_dataset(&d);
        assert_eq!(raw.len(), encoded_len(&d));
        assert_eq!(&raw[..4], b"XCLM", "magic is the literal bytes XCLM");
        let back = decode_dataset(raw).unwrap();
        assert_eq!(back.t_max, d.t_max);
        assert_eq!((back.ntheta, back.nphi), (d.ntheta, d.nphi));
        assert_eq!(back.start_year, d.start_year);
        assert_eq!(back.tau, d.tau);
        for (a, b) in d.data.iter().zip(&back.data) {
            // f32 storage: relative error ≤ 2^-24.
            assert!(((a - b) / a).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode_dataset(Bytes::from_static(
                b"not a dataset at all....123456789abcdef0"
            ))
            .unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            decode_dataset(Bytes::from_static(b"xx")).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn accepts_legacy_xlcm_magic() {
        // Files written before the magic fix start with the bytes `XLCM`
        // (the old obfuscated constant's actual LE spelling).
        let d = sample();
        let mut raw = BytesMut::from(&encode_dataset(&d)[..]);
        raw[..4].copy_from_slice(b"XLCM");
        let back = decode_dataset(raw.freeze()).unwrap();
        assert_eq!(back.t_max, d.t_max);
        assert_eq!(back.data.len(), d.data.len());
    }

    #[test]
    fn rejects_truncated_payload() {
        let d = sample();
        let raw = encode_dataset(&d);
        let cut = raw.slice(0..raw.len() - 10);
        assert_eq!(decode_dataset(cut).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn rejects_overflowing_header_sizes() {
        // A hostile header whose t_max × npoints × 4 overflows usize must
        // error, not panic (debug) or wrap (release).
        let mut raw = BytesMut::new();
        raw.put_slice(b"XCLM");
        raw.put_u16_le(1);
        raw.put_u16_le(0);
        raw.put_u64_le(u64::MAX / 2); // t_max
        raw.put_u32_le(u32::MAX); // ntheta
        raw.put_u32_le(u32::MAX); // nphi
        raw.put_i64_le(2000);
        raw.put_u32_le(365);
        assert_eq!(
            decode_dataset(raw.freeze()).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        let d = sample();
        let mut raw = BytesMut::from(&encode_dataset(&d)[..]);
        raw.put_slice(b"junk");
        assert_eq!(
            decode_dataset(raw.freeze()).unwrap_err(),
            DecodeError::TrailingBytes(4)
        );
    }

    #[test]
    fn rejects_future_version() {
        let d = sample();
        let mut raw = BytesMut::from(&encode_dataset(&d)[..]);
        raw[4] = 99; // version byte (LE)
        assert_eq!(
            decode_dataset(raw.freeze()).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn disk_roundtrip() {
        let d = sample();
        let path = std::env::temp_dir().join("exaclim_io_test.xclm");
        std::fs::write(&path, encode_dataset(&d)).unwrap();
        let raw = Bytes::from(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).ok();
        let back = decode_dataset(raw).unwrap();
        assert_eq!(back.t_max, d.t_max);
    }

    #[test]
    fn eca1_roundtrip_is_exact_at_codec_precision() {
        let d = sample();
        for codec in Codec::ALL {
            let raw = dataset_to_eca1(&d, codec).unwrap();
            let back = dataset_from_eca1(raw).unwrap();
            assert_eq!(back.t_max, d.t_max);
            assert_eq!((back.ntheta, back.nphi), (d.ntheta, d.nphi));
            assert_eq!((back.start_year, back.tau), (d.start_year, d.tau));
            for (a, b) in d.data.iter().zip(&back.data) {
                assert_eq!(codec.quantize(*a), *b, "{}", codec.label());
            }
        }
    }

    #[test]
    fn xclm_to_eca1_conversion_is_lossless_at_f32() {
        let d = sample();
        let legacy = encode_dataset(&d);
        let via_legacy = decode_dataset(legacy.clone()).unwrap();
        let eca = convert_xclm_to_eca1(legacy, Codec::F32Shuffle).unwrap();
        let back = dataset_from_eca1(eca).unwrap();
        // The converted archive must reproduce the legacy decode exactly:
        // both sides are the same f32 quantization of the original field.
        assert_eq!(via_legacy.data, back.data);
        assert_eq!(via_legacy.t_max, back.t_max);
    }

    #[test]
    fn conversion_surfaces_legacy_errors() {
        let err = convert_xclm_to_eca1(
            Bytes::from_static(b"bogus data............................"),
            Codec::F32,
        )
        .unwrap_err();
        assert_eq!(err, ConvertError::Legacy(DecodeError::BadMagic));
    }
}
