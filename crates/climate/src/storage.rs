//! Storage accounting — the paper's "saving petabytes" arithmetic.
//!
//! An ESM ensemble stores `R × T × Nθ × Nϕ` values; the trained emulator
//! stores parameters once (per-location trend/σ, diagonal `Φ_p`, the factor
//! `V ∈ R^{L²×L²}`, `v²`) and regenerates unlimited realizations. This
//! module quantifies both sides plus the $/TB/yr carrying cost quoted for
//! NCAR, and carries the CMIP/DYAMOND reference volumes from §I.

use serde::{Deserialize, Serialize};

/// Bytes per stored sample in the archive (ERA5-style f32).
pub const ARCHIVE_BYTES_PER_VALUE: u64 = 4;
/// NCAR's quoted archival cost, $ per TB per year (§I).
pub const DOLLARS_PER_TB_YEAR: f64 = 45.0;
/// CMIP3 total volume in bytes (~40 TB, §I).
pub const CMIP3_BYTES: f64 = 40.0 * TB;
/// CMIP5 total volume (~2 PB).
pub const CMIP5_BYTES: f64 = 2.0 * PB;
/// CMIP6 total volume (~28 PB).
pub const CMIP6_BYTES: f64 = 28.0 * PB;
/// SCREAM's DYAMOND output rate: ~4.5 TB per simulated day (§I).
pub const SCREAM_BYTES_PER_DAY: f64 = 4.5 * TB;

/// One terabyte.
pub const TB: f64 = 1e12;
/// One petabyte.
pub const PB: f64 = 1e15;

/// Storage model of one emulator deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageModel {
    /// Ensemble members the archive would hold.
    pub ensemble_size: u64,
    /// Time steps per member.
    pub t_max: u64,
    /// Grid points per field.
    pub npoints: u64,
    /// Emulator band-limit.
    pub lmax: u64,
    /// Harmonic pairs in the trend model.
    pub k_harmonics: u64,
    /// VAR order.
    pub var_order: u64,
}

impl StorageModel {
    /// Bytes to store the raw simulation ensemble.
    pub fn ensemble_bytes(&self) -> f64 {
        (self.ensemble_size * self.t_max * self.npoints * ARCHIVE_BYTES_PER_VALUE) as f64
    }

    /// Bytes to store the trained emulator (f64 parameters):
    /// per-location trend (β₀, β₁, β₂, ρ, σ, v and 2K harmonics), the
    /// diagonal `Φ_p` (P·L²), and the dense factor `V` (L²(L²+1)/2).
    pub fn emulator_bytes(&self) -> f64 {
        let per_location = 6 + 2 * self.k_harmonics;
        let l2 = self.lmax * self.lmax;
        let trend = self.npoints * per_location;
        let var = self.var_order * l2;
        let factor = l2 * (l2 + 1) / 2;
        ((trend + var + factor) * 8) as f64
    }

    /// Compression ratio: archive bytes per emulator byte.
    pub fn savings_ratio(&self) -> f64 {
        self.ensemble_bytes() / self.emulator_bytes()
    }

    /// Bytes saved by replacing the archive with the emulator.
    pub fn bytes_saved(&self) -> f64 {
        (self.ensemble_bytes() - self.emulator_bytes()).max(0.0)
    }

    /// Annual storage cost of the raw ensemble in dollars.
    pub fn ensemble_cost_per_year(&self) -> f64 {
        self.ensemble_bytes() / TB * DOLLARS_PER_TB_YEAR
    }

    /// Annual dollars saved.
    pub fn dollars_saved_per_year(&self) -> f64 {
        self.bytes_saved() / TB * DOLLARS_PER_TB_YEAR
    }
}

/// The paper's headline configuration: hourly emulation at 0.034°
/// (L = 5219) over `years` years; one year = 477 billion points per
/// realization (§I).
pub fn paper_headline_model(ensemble_size: u64, years: u64) -> StorageModel {
    // 0.034° ⇒ roughly 5220×10440 grid; the paper quotes 477e9 points for a
    // single year of hourly data: 8760 × Nθ × Nϕ ≈ 477e9.
    let npoints = 5_220u64 * 10_440;
    StorageModel {
        ensemble_size,
        t_max: 8_760 * years,
        npoints,
        lmax: 5_219,
        k_harmonics: 5,
        var_order: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_single_year_matches_quoted_points() {
        let m = paper_headline_model(1, 1);
        // The paper quotes 477 billion points for one emulated year; at
        // archive f32 that is ~1.9 TB per realization-year.
        let pts = m.t_max * m.npoints;
        assert!((pts as f64 - 477e9).abs() / 477e9 < 0.02, "points {pts}");
        assert!(m.ensemble_bytes() > 1.5 * TB && m.ensemble_bytes() < 2.5 * TB);
    }

    #[test]
    fn century_scale_ensemble_saves_petabytes() {
        // A CESM-LENS-style 100-member ensemble over the 83-year ERA5 span
        // at the headline resolution: ~15.8 PB of archive replaced by a
        // ~3 PB emulator (V dominates at L = 5219).
        let m = paper_headline_model(100, 83);
        assert!(m.ensemble_bytes() > 14.0 * PB && m.ensemble_bytes() < 18.0 * PB);
        assert!(
            m.bytes_saved() > 10.0 * PB,
            "saved {}",
            m.bytes_saved() / PB
        );
        assert!(m.savings_ratio() > 4.0, "ratio {}", m.savings_ratio());
    }

    #[test]
    fn small_configuration_numbers() {
        let m = StorageModel {
            ensemble_size: 5,
            t_max: 365 * 30,
            npoints: 721 * 1440,
            lmax: 64,
            k_harmonics: 5,
            var_order: 3,
        };
        let e = m.ensemble_bytes();
        assert_eq!(e, (5u64 * 365 * 30 * 721 * 1440 * 4) as f64);
        assert!(m.emulator_bytes() < e, "emulator must be smaller");
        assert!(m.savings_ratio() > 100.0, "ratio {}", m.savings_ratio());
        assert!(m.ensemble_cost_per_year() > 0.0);
        assert!(m.dollars_saved_per_year() <= m.ensemble_cost_per_year());
    }

    #[test]
    fn reference_volumes_ordered() {
        assert!(CMIP3_BYTES < CMIP5_BYTES && CMIP5_BYTES < CMIP6_BYTES);
        assert_eq!(CMIP6_BYTES / PB, 28.0);
        // 40 days of SCREAM ≈ 180 TB.
        assert!((SCREAM_BYTES_PER_DAY * 40.0 / TB - 180.0).abs() < 1.0);
    }

    #[test]
    fn emulator_bytes_grow_with_bandlimit() {
        let base = StorageModel {
            ensemble_size: 1,
            t_max: 1000,
            npoints: 10_000,
            lmax: 32,
            k_harmonics: 5,
            var_order: 3,
        };
        let big = StorageModel {
            lmax: 64,
            ..base.clone()
        };
        // V scales as L⁴/2: doubling L multiplies the factor by ~16.
        assert!(big.emulator_bytes() > 10.0 * base.emulator_bytes());
    }
}
