//! # exaclim-climate
//!
//! The data substrate of the reproduction. The paper trains on ERA5 surface
//! temperature (0.25°, 1940–2022) — proprietary-scale data we cannot ship —
//! so this crate generates a statistically analogous synthetic ensemble
//! (DESIGN.md §2 documents the substitution):
//!
//! * [`landsea`] — a smooth procedural land/sea mask (low-order bumps on the
//!   sphere) driving land–ocean anisotropy,
//! * [`generator`] — ERA5-like surface-temperature fields: latitudinal
//!   climatology, hemisphere-antisymmetric seasonal cycle, diurnal cycle at
//!   hourly resolution, forcing-driven warming trend, and an AR(1)
//!   spatially correlated stochastic weather component with a power-law
//!   spherical-harmonic spectrum,
//! * [`upsample`] — separable cubic-spline grid up-sampling (§IV.A's
//!   "spline interpolation to upscale the data"),
//! * [`storage`] — the storage-cost accounting behind the paper's
//!   "saving petabytes" headline: ensemble bytes vs emulator-parameter
//!   bytes, $/TB/yr, CMIP reference volumes.

pub mod generator;
pub mod io;
pub mod landsea;
pub mod storage;
pub mod upsample;

pub use generator::{Dataset, SyntheticEra5, SyntheticEra5Config};
pub use io::{
    convert_xclm_to_eca1, dataset_from_eca1, dataset_to_eca1, decode_dataset, encode_dataset,
};
pub use landsea::land_fraction;
pub use storage::StorageModel;
