//! Procedural land/sea mask.
//!
//! A handful of smooth bumps on the sphere, pushed through a logistic
//! squash, gives continents-like regions with ~30% land fraction. The mask
//! modulates climatology, seasonal amplitude, and stochastic variance so
//! the synthetic fields are anisotropic in longitude — the property whose
//! modeling cost (O(L⁴T + L⁶)) motivates the paper's HPC design.

/// Gaussian-bump "continents": centers in (co-latitude, longitude) radians
/// with angular widths, loosely placed like Earth's land masses.
const BUMPS: [(f64, f64, f64, f64); 6] = [
    // (θ center, φ center, width, weight)
    (0.85, 4.80, 0.44, 1.0), // North America
    (0.75, 0.35, 0.48, 1.0), // Eurasia (west)
    (0.95, 1.45, 0.52, 0.9), // Eurasia (east)
    (1.55, 0.40, 0.36, 0.8), // Africa
    (1.95, 5.00, 0.32, 0.7), // South America
    (2.05, 2.30, 0.28, 0.6), // Australia
];

/// Smooth land fraction in `[0, 1]` at co-latitude `theta ∈ [0, π]` and
/// longitude `phi ∈ [0, 2π)`.
pub fn land_fraction(theta: f64, phi: f64) -> f64 {
    let mut field = -0.75f64; // ocean bias
    for &(tc, pc, w, a) in &BUMPS {
        let d = great_circle(theta, phi, tc, pc);
        field += a * (-(d * d) / (2.0 * w * w)).exp();
    }
    // Antarctica: land near the south pole.
    field += 0.9 * (-(std::f64::consts::PI - theta).powi(2) / 0.18).exp();
    1.0 / (1.0 + (-6.0 * field).exp())
}

/// Great-circle angular distance between two points on the unit sphere.
pub fn great_circle(t1: f64, p1: f64, t2: f64, p2: f64) -> f64 {
    let c = t1.cos() * t2.cos() + t1.sin() * t2.sin() * (p1 - p2).cos();
    c.clamp(-1.0, 1.0).acos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_is_bounded() {
        for i in 0..40 {
            for j in 0..80 {
                let t = std::f64::consts::PI * i as f64 / 39.0;
                let p = 2.0 * std::f64::consts::PI * j as f64 / 80.0;
                let f = land_fraction(t, p);
                assert!((0.0..=1.0).contains(&f), "({t},{p}) -> {f}");
            }
        }
    }

    #[test]
    fn global_land_fraction_is_plausible() {
        // Earth is ~29% land; the procedural mask should be within a broad
        // band around that, area-weighted.
        let mut land = 0.0;
        let mut area = 0.0;
        let n = 90;
        for i in 0..n {
            let t = std::f64::consts::PI * (i as f64 + 0.5) / n as f64;
            let w = t.sin();
            for j in 0..2 * n {
                let p = std::f64::consts::PI * j as f64 / n as f64;
                land += w * land_fraction(t, p);
                area += w;
            }
        }
        let frac = land / area;
        assert!(frac > 0.15 && frac < 0.45, "land fraction {frac}");
    }

    #[test]
    fn mask_varies_with_longitude() {
        // Anisotropy: at mid-northern latitudes, land and ocean both exist.
        let t = 0.85;
        let vals: Vec<f64> = (0..64)
            .map(|j| land_fraction(t, 2.0 * std::f64::consts::PI * j as f64 / 64.0))
            .collect();
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let min = vals.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.6, "some land: {max}");
        assert!(min < 0.4, "some ocean: {min}");
    }

    #[test]
    fn great_circle_identities() {
        assert!(great_circle(1.0, 2.0, 1.0, 2.0).abs() < 1e-12);
        // Pole to pole.
        let d = great_circle(0.0, 0.0, std::f64::consts::PI, 1.5);
        assert!((d - std::f64::consts::PI).abs() < 1e-12);
        // Quarter turn along the equator.
        let d = great_circle(
            std::f64::consts::FRAC_PI_2,
            0.0,
            std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2,
        );
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn antarctica_is_land_south_pole_ocean_north() {
        assert!(
            land_fraction(std::f64::consts::PI - 0.05, 1.0) > 0.5,
            "Antarctica"
        );
        assert!(land_fraction(0.02, 1.0) < 0.5, "Arctic ocean");
    }
}
