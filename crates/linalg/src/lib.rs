//! # exaclim-linalg
//!
//! Tile-based dense linear algebra with mixed precision — the numerical core
//! the paper accelerates on GPUs (§III.C–D), reproduced here with CPU
//! kernels whose *rounding semantics* match the hardware ones:
//!
//! * [`mod@f16`] — software IEEE binary16 with round-to-nearest-even; half
//!   precision tiles store `u16` payloads and multiply–accumulate in `f32`,
//!   mirroring tensor-core MMA behaviour,
//! * [`precision`] — the DP/SP/HP lattice and the paper's four variant
//!   policies (DP, DP/SP, DP/SP/HP, DP/HP) via band-distance or
//!   norm-adaptive tile assignment,
//! * [`tile`] / [`tiled`] — square tiles in one of three storage precisions
//!   and the 2D tiled symmetric matrix they compose,
//! * [`kernels`] — POTRF/TRSM/SYRK/GEMM on tiles, computed in the precision
//!   of the updated tile,
//! * [`cholesky`] — sequential right-looking mixed-precision tile Cholesky
//!   plus dense references and forward-error metrics,
//! * [`dense`] — small dense helpers (matmul, Cholesky, triangular and OLS
//!   solves) for the statistics layer.

pub mod cholesky;
pub mod dense;
pub mod f16;
pub mod kernels;
pub mod precision;
pub mod tile;
pub mod tiled;

pub use cholesky::{tile_cholesky, CholeskyStats};
pub use dense::Matrix;
pub use f16::Half;
pub use precision::{Precision, PrecisionPolicy};
pub use tile::Tile;
pub use tiled::TiledMatrix;
