//! Small dense matrix helpers for the statistics layer.
//!
//! These back the per-location OLS fits (eq. 2), the VAR(P) coefficient
//! estimation, and the empirical-covariance Cholesky at test scales. They
//! are deliberately simple row-major f64 routines; the large-scale path is
//! the tiled mixed-precision code.

/// Row-major dense f64 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, &o) in crow.iter_mut().zip(orow) {
                    *c += a * o;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// `self + λI` in place; the paper's "minor perturbation along the
    /// diagonal" that keeps the empirical covariance positive definite.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// Lower Cholesky factor `L` with `self = L Lᵀ`. Fails on non-SPD input.
    pub fn cholesky_lower(&self) -> Result<Matrix, crate::kernels::NotPositiveDefinite> {
        assert_eq!(self.rows, self.cols, "Cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(crate::kernels::NotPositiveDefinite { pivot: i, value: s });
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solve `L y = b` with `L` lower triangular (this matrix).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.get(i, k) * y[k];
            }
            y[i] = s / self.get(i, i);
        }
        y
    }

    /// Solve `Lᵀ x = y` with `L` lower triangular (this matrix).
    pub fn solve_lower_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(y.len(), n);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.get(k, i) * x[k];
            }
            x[i] = s / self.get(i, i);
        }
        x
    }

    /// Solve the SPD system `self · x = b` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, crate::kernels::NotPositiveDefinite> {
        let l = self.cholesky_lower()?;
        Ok(l.solve_lower_transpose(&l.solve_lower(b)))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Ordinary least squares: minimize `‖Xβ − y‖₂` via the normal equations
/// (with a tiny ridge fallback if `XᵀX` is numerically singular).
pub fn ols_solve(x: &Matrix, y: &[f64]) -> Vec<f64> {
    assert_eq!(x.rows(), y.len(), "design/response size mismatch");
    let xt = x.transpose();
    let mut xtx = xt.matmul(x);
    let xty = xt.matvec(y);
    match xtx.solve_spd(&xty) {
        Ok(beta) => beta,
        Err(_) => {
            let scale = xtx.frobenius_norm().max(1.0);
            xtx.add_diagonal(1e-10 * scale);
            xtx.solve_spd(&xty)
                .expect("ridge-regularized normal equations are SPD")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 2.0, 0.4, 2.0, 5.0, 1.0, 0.4, 1.0, 3.0]);
        let l = a.cholesky_lower().unwrap();
        let r = l.matmul(&l.transpose());
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
        // Upper triangle strictly zero.
        assert_eq!(l.get(0, 2), 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 3.0, 1.0]);
        assert!(a.cholesky_lower().is_err());
    }

    #[test]
    fn spd_solve_matches_direct() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 1.0, 1.0, 3.0]);
        let x = a.solve_spd(&[1.0, 2.0]).unwrap();
        // 4x + y = 1; x + 3y = 2 → x = 1/11, y = 7/11.
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn triangular_solves_invert_each_other() {
        let a = Matrix::from_vec(3, 3, vec![9.0, 3.0, 1.0, 3.0, 8.0, 2.0, 1.0, 2.0, 7.0]);
        let l = a.cholesky_lower().unwrap();
        let b = [1.0, -2.0, 0.5];
        let y = l.solve_lower(&b);
        // L y = b
        let back = l.matvec(&y);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
        let x = l.solve_lower_transpose(&y);
        let back = l.transpose().matvec(&x);
        for (u, v) in back.iter().zip(&y) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn ols_recovers_coefficients() {
        // y = 2 + 3 t − 0.5 t², noise-free.
        let n = 50;
        let mut xd = Vec::with_capacity(n * 3);
        let mut y = Vec::with_capacity(n);
        for k in 0..n {
            let t = k as f64 * 0.1;
            xd.extend_from_slice(&[1.0, t, t * t]);
            y.push(2.0 + 3.0 * t - 0.5 * t * t);
        }
        let x = Matrix::from_vec(n, 3, xd);
        let beta = ols_solve(&x, &y);
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
        assert!((beta[2] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn ols_handles_rank_deficiency_with_ridge() {
        // Duplicate column: XᵀX singular; ridge fallback must not panic.
        let x = Matrix::from_vec(4, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        let y = [2.0, 4.0, 6.0, 8.0];
        let beta = ols_solve(&x, &y);
        // Any split with β₀ + β₁ = 2 fits; the fitted values must match.
        for k in 0..4 {
            let fit = beta[0] * x.get(k, 0) + beta[1] * x.get(k, 1);
            assert!((fit - y[k]).abs() < 1e-5, "fit {fit} vs {}", y[k]);
        }
    }

    #[test]
    fn add_diagonal_shifts_eigenvalues() {
        let mut a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 3.0, 1.0]); // indefinite
        assert!(a.cholesky_lower().is_err());
        a.add_diagonal(2.5);
        assert!(a.cholesky_lower().is_ok());
    }
}
