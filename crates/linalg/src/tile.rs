//! Square matrix tiles in one of three storage precisions.

use crate::f16::Half;
use crate::precision::Precision;

/// Payload of a tile, in its storage precision.
#[derive(Debug, Clone)]
pub enum TileData {
    /// Double precision elements.
    F64(Vec<f64>),
    /// Single precision elements.
    F32(Vec<f32>),
    /// Half precision elements (binary16 bit patterns).
    F16(Vec<u16>),
}

/// A `b × b` row-major tile.
#[derive(Debug, Clone)]
pub struct Tile {
    b: usize,
    data: TileData,
}

impl Tile {
    /// Zero tile of side `b` in the given precision.
    pub fn zeros(b: usize, p: Precision) -> Self {
        let n = b * b;
        let data = match p {
            Precision::Double => TileData::F64(vec![0.0; n]),
            Precision::Single => TileData::F32(vec![0.0; n]),
            Precision::Half => TileData::F16(vec![0; n]),
        };
        Self { b, data }
    }

    /// Build from row-major f64 values, rounding to the target precision.
    pub fn from_f64(b: usize, values: &[f64], p: Precision) -> Self {
        assert_eq!(values.len(), b * b, "tile payload must be b²");
        let data = match p {
            Precision::Double => TileData::F64(values.to_vec()),
            Precision::Single => TileData::F32(values.iter().map(|&x| x as f32).collect()),
            Precision::Half => TileData::F16(values.iter().map(|&x| Half::from_f64(x).0).collect()),
        };
        Self { b, data }
    }

    /// Tile side length.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Storage precision.
    pub fn precision(&self) -> Precision {
        match self.data {
            TileData::F64(_) => Precision::Double,
            TileData::F32(_) => Precision::Single,
            TileData::F16(_) => Precision::Half,
        }
    }

    /// Bytes occupied by the payload.
    pub fn bytes(&self) -> usize {
        self.b * self.b * self.precision().bytes()
    }

    /// Widen the payload to f64 (exact for every storage precision).
    pub fn to_f64(&self) -> Vec<f64> {
        match &self.data {
            TileData::F64(v) => v.clone(),
            TileData::F32(v) => v.iter().map(|&x| x as f64).collect(),
            TileData::F16(v) => v.iter().map(|&h| Half(h).to_f64()).collect(),
        }
    }

    /// Widen the payload to f32 (exact from f16; rounds from f64).
    pub fn to_f32(&self) -> Vec<f32> {
        match &self.data {
            TileData::F64(v) => v.iter().map(|&x| x as f32).collect(),
            TileData::F32(v) => v.clone(),
            TileData::F16(v) => v.iter().map(|&h| Half(h).to_f32()).collect(),
        }
    }

    /// Overwrite the payload from f64 values, rounding to this tile's
    /// precision.
    pub fn store_f64(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.b * self.b);
        match &mut self.data {
            TileData::F64(v) => v.copy_from_slice(values),
            TileData::F32(v) => {
                for (d, &s) in v.iter_mut().zip(values) {
                    *d = s as f32;
                }
            }
            TileData::F16(v) => {
                for (d, &s) in v.iter_mut().zip(values) {
                    *d = Half::from_f64(s).0;
                }
            }
        }
    }

    /// Overwrite the payload from f32 values.
    pub fn store_f32(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.b * self.b);
        match &mut self.data {
            TileData::F64(v) => {
                for (d, &s) in v.iter_mut().zip(values) {
                    *d = s as f64;
                }
            }
            TileData::F32(v) => v.copy_from_slice(values),
            TileData::F16(v) => {
                for (d, &s) in v.iter_mut().zip(values) {
                    *d = Half::from_f32(s).0;
                }
            }
        }
    }

    /// Element access, widened to f64.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.b && j < self.b);
        match &self.data {
            TileData::F64(v) => v[i * self.b + j],
            TileData::F32(v) => v[i * self.b + j] as f64,
            TileData::F16(v) => Half(v[i * self.b + j]).to_f64(),
        }
    }

    /// Convert to another precision (a "reshape" in PaRSEC terms). Converting
    /// to the same precision is a cheap clone.
    pub fn convert(&self, p: Precision) -> Tile {
        if p == self.precision() {
            return self.clone();
        }
        Tile::from_f64(self.b, &self.to_f64(), p)
    }

    /// Frobenius norm of the tile (computed in f64).
    pub fn frobenius_norm(&self) -> f64 {
        self.to_f64().iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values(b: usize) -> Vec<f64> {
        (0..b * b).map(|k| (k as f64 * 0.37).sin() * 3.0).collect()
    }

    #[test]
    fn roundtrip_exact_in_double() {
        let v = sample_values(4);
        let t = Tile::from_f64(4, &v, Precision::Double);
        assert_eq!(t.to_f64(), v);
        assert_eq!(t.precision(), Precision::Double);
        assert_eq!(t.bytes(), 16 * 8);
    }

    #[test]
    fn half_storage_quantizes() {
        let v = sample_values(3);
        let t = Tile::from_f64(3, &v, Precision::Half);
        assert_eq!(t.bytes(), 9 * 2);
        for (orig, stored) in v.iter().zip(t.to_f64()) {
            if *orig == 0.0 {
                assert_eq!(stored, 0.0);
                continue;
            }
            let rel = ((stored - orig) / orig).abs();
            assert!(rel <= Half::UNIT_ROUNDOFF * 1.001, "rel={rel}");
        }
        // Quantization is idempotent.
        let t2 = Tile::from_f64(3, &t.to_f64(), Precision::Half);
        assert_eq!(t.to_f64(), t2.to_f64());
    }

    #[test]
    fn convert_between_precisions() {
        let v = sample_values(5);
        let dp = Tile::from_f64(5, &v, Precision::Double);
        let hp = dp.convert(Precision::Half);
        assert_eq!(hp.precision(), Precision::Half);
        let widened = hp.convert(Precision::Double);
        // Widening after narrowing preserves the narrowed values exactly.
        assert_eq!(widened.to_f64(), hp.to_f64());
    }

    #[test]
    fn get_matches_layout() {
        let v: Vec<f64> = (0..9).map(|x| x as f64).collect();
        let t = Tile::from_f64(3, &v, Precision::Double);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.get(2, 1), 7.0);
    }

    #[test]
    fn frobenius_norm_value() {
        let t = Tile::from_f64(2, &[3.0, 0.0, 0.0, 4.0], Precision::Single);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn store_f64_rounds_to_own_precision() {
        let mut t = Tile::zeros(2, Precision::Half);
        t.store_f64(&[1.0005, 2.0, -3.0, 0.1]);
        let back = t.to_f64();
        assert_eq!(back[1], 2.0);
        assert!((back[0] - 1.0005).abs() < 1e-3);
        assert!((back[0] - 1.0005).abs() > 0.0, "must actually quantize");
    }
}
