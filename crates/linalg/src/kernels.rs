//! The four tile kernels of the Cholesky DAG: POTRF, TRSM, SYRK, GEMM.
//!
//! Each kernel computes in the precision of the tile it **updates** (the
//! paper's convention: incoming tiles are reshaped/converted to the
//! successor's precision). Half-precision updates follow tensor-core MMA
//! semantics: operands quantized to binary16, products and sums accumulated
//! in f32, one rounding on store.

use crate::precision::Precision;
use crate::tile::Tile;

/// Error raised when a diagonal tile is not positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index (within the tile) of the failing pivot.
    pub pivot: usize,
    /// The non-positive pivot value encountered.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite at pivot {} ({})",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Internal scalar abstraction so the f64 and f32 kernel bodies are written
/// once. Half tiles run the f32 body on quantized operands.
trait Real: Copy + PartialOrd {
    const ZERO: Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sqrt(self) -> Self;
    fn mul_add_acc(self, a: Self, b: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn div(self, o: Self) -> Self;
}

impl Real for f64 {
    const ZERO: f64 = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn mul_add_acc(self, a: f64, b: f64) -> f64 {
        self + a * b
    }
    #[inline(always)]
    fn sub(self, o: f64) -> f64 {
        self - o
    }
    #[inline(always)]
    fn div(self, o: f64) -> f64 {
        self / o
    }
}

impl Real for f32 {
    const ZERO: f32 = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn sqrt(self) -> f32 {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn mul_add_acc(self, a: f32, b: f32) -> f32 {
        self + a * b
    }
    #[inline(always)]
    fn sub(self, o: f32) -> f32 {
        self - o
    }
    #[inline(always)]
    fn div(self, o: f32) -> f32 {
        self / o
    }
}

/// In-place lower Cholesky of a `b × b` buffer; the strict upper triangle is
/// zeroed so the result is exactly `L`.
fn potrf_buf<T: Real>(a: &mut [f64], b: usize) -> Result<(), NotPositiveDefinite> {
    // Work in T's arithmetic but keep the staging buffer in f64 for I/O.
    let mut w: Vec<T> = a.iter().map(|&x| T::from_f64(x)).collect();
    for k in 0..b {
        let mut d = w[k * b + k];
        for p in 0..k {
            let l = w[k * b + p];
            d = d.sub(T::ZERO.mul_add_acc(l, l));
        }
        if d.to_f64() <= 0.0 || !d.to_f64().is_finite() {
            return Err(NotPositiveDefinite {
                pivot: k,
                value: d.to_f64(),
            });
        }
        let dk = d.sqrt();
        w[k * b + k] = dk;
        for i in k + 1..b {
            let mut s = w[i * b + k];
            for p in 0..k {
                s = s.sub(T::ZERO.mul_add_acc(w[i * b + p], w[k * b + p]));
            }
            w[i * b + k] = s.div(dk);
        }
        for j in k + 1..b {
            w[k * b + j] = T::ZERO;
        }
    }
    for (d, s) in a.iter_mut().zip(&w) {
        *d = s.to_f64();
    }
    Ok(())
}

/// POTRF: factor a diagonal tile in place, `A = L Lᵀ`, storing `L`.
/// Computation runs in the tile's own precision (half tiles use f32
/// arithmetic on quantized values, rounded on store).
pub fn potrf(a: &mut Tile) -> Result<(), NotPositiveDefinite> {
    let b = a.b();
    let mut buf = a.to_f64();
    match a.precision() {
        Precision::Double => potrf_buf::<f64>(&mut buf, b)?,
        Precision::Single | Precision::Half => potrf_buf::<f32>(&mut buf, b)?,
    }
    a.store_f64(&buf);
    Ok(())
}

fn trsm_body<T: Real>(l: &[T], x: &mut [T], b: usize) {
    // Solve X Lᵀ = B row by row (forward substitution over columns).
    for r in 0..b {
        let row = &mut x[r * b..(r + 1) * b];
        for j in 0..b {
            let mut s = row[j];
            for k in 0..j {
                s = s.sub(T::ZERO.mul_add_acc(row[k], l[j * b + k]));
            }
            row[j] = s.div(l[j * b + j]);
        }
    }
}

/// TRSM: `B := B · L^{-T}` with `L` the lower factor of the panel's
/// diagonal tile. Updates `bt` in its own precision; `l` is converted in.
pub fn trsm(l: &Tile, bt: &mut Tile) {
    let b = bt.b();
    assert_eq!(l.b(), b, "tile sizes must match");
    match bt.precision() {
        Precision::Double => {
            let lw = l.to_f64();
            let mut x = bt.to_f64();
            trsm_body::<f64>(&lw, &mut x, b);
            bt.store_f64(&x);
        }
        Precision::Single => {
            let lw = l.to_f32();
            let mut x = bt.to_f32();
            trsm_body::<f32>(&lw, &mut x, b);
            bt.store_f32(&x);
        }
        Precision::Half => {
            // Quantize operands to binary16 first (what arrives on an HP
            // tile's input edge), then solve in f32.
            let lw = l.convert(Precision::Half).to_f32();
            let mut x = bt.to_f32();
            trsm_body::<f32>(&lw, &mut x, b);
            bt.store_f32(&x);
        }
    }
}

fn gemm_body<T: Real>(a: &[T], bt: &[T], c: &mut [T], b: usize) {
    // C := C − A · Bᵀ ; both inner vectors are contiguous rows.
    for i in 0..b {
        let arow = &a[i * b..(i + 1) * b];
        for j in 0..b {
            let brow = &bt[j * b..(j + 1) * b];
            let mut acc = T::ZERO;
            for k in 0..b {
                acc = acc.mul_add_acc(arow[k], brow[k]);
            }
            c[i * b + j] = c[i * b + j].sub(acc);
        }
    }
}

/// GEMM: `C := C − A · Bᵀ`, computed in `c`'s precision.
pub fn gemm(a: &Tile, bt: &Tile, c: &mut Tile) {
    let b = c.b();
    assert!(a.b() == b && bt.b() == b, "tile sizes must match");
    match c.precision() {
        Precision::Double => {
            let (aw, bw) = (a.to_f64(), bt.to_f64());
            let mut cw = c.to_f64();
            gemm_body::<f64>(&aw, &bw, &mut cw, b);
            c.store_f64(&cw);
        }
        Precision::Single => {
            let (aw, bw) = (a.to_f32(), bt.to_f32());
            let mut cw = c.to_f32();
            gemm_body::<f32>(&aw, &bw, &mut cw, b);
            c.store_f32(&cw);
        }
        Precision::Half => {
            // Tensor-core semantics: binary16 operands, f32 accumulate,
            // rounded once on store.
            let aw = a.convert(Precision::Half).to_f32();
            let bw = bt.convert(Precision::Half).to_f32();
            let mut cw = c.to_f32();
            gemm_body::<f32>(&aw, &bw, &mut cw, b);
            c.store_f32(&cw);
        }
    }
}

fn syrk_body<T: Real>(a: &[T], c: &mut [T], b: usize) {
    // C := C − A Aᵀ, updating the full square (C stays symmetric).
    for i in 0..b {
        let arow_i = &a[i * b..(i + 1) * b];
        for j in 0..=i {
            let arow_j = &a[j * b..(j + 1) * b];
            let mut acc = T::ZERO;
            for k in 0..b {
                acc = acc.mul_add_acc(arow_i[k], arow_j[k]);
            }
            c[i * b + j] = c[i * b + j].sub(acc);
            if i != j {
                c[j * b + i] = c[i * b + j];
            }
        }
    }
}

/// SYRK: `C := C − A · Aᵀ` on a diagonal tile, in `c`'s precision.
pub fn syrk(a: &Tile, c: &mut Tile) {
    let b = c.b();
    assert_eq!(a.b(), b, "tile sizes must match");
    match c.precision() {
        Precision::Double => {
            let aw = a.to_f64();
            let mut cw = c.to_f64();
            syrk_body::<f64>(&aw, &mut cw, b);
            c.store_f64(&cw);
        }
        Precision::Single => {
            let aw = a.to_f32();
            let mut cw = c.to_f32();
            syrk_body::<f32>(&aw, &mut cw, b);
            c.store_f32(&cw);
        }
        Precision::Half => {
            let aw = a.convert(Precision::Half).to_f32();
            let mut cw = c.to_f32();
            syrk_body::<f32>(&aw, &mut cw, b);
            c.store_f32(&cw);
        }
    }
}

/// Flop counts of the four kernels for a tile side `b` (standard LAPACK
/// accounting, used by benches and the cluster simulator).
pub mod flops {
    /// POTRF on a `b×b` tile.
    pub fn potrf(b: usize) -> f64 {
        let b = b as f64;
        b * b * b / 3.0
    }
    /// TRSM on a `b×b` tile.
    pub fn trsm(b: usize) -> f64 {
        let b = b as f64;
        b * b * b
    }
    /// SYRK on a `b×b` tile.
    pub fn syrk(b: usize) -> f64 {
        let b = b as f64;
        b * b * b
    }
    /// GEMM on a `b×b` tile.
    pub fn gemm(b: usize) -> f64 {
        let b = b as f64;
        2.0 * b * b * b
    }
    /// Total Cholesky flops for matrix size `n` (n³/3 to leading order).
    pub fn cholesky(n: f64) -> f64 {
        n * n * n / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn spd_tile(b: usize, seed: u64, p: Precision) -> (Tile, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // A = G Gᵀ + b·I is SPD.
        let mut a = vec![0.0; b * b];
        for i in 0..b {
            for j in 0..b {
                let mut s = 0.0;
                for k in 0..b {
                    s += g[i * b + k] * g[j * b + k];
                }
                a[i * b + j] = s + if i == j { b as f64 } else { 0.0 };
            }
        }
        (Tile::from_f64(b, &a, p), a)
    }

    fn reconstruct_llt(l: &Tile) -> Vec<f64> {
        let b = l.b();
        let lw = l.to_f64();
        let mut out = vec![0.0; b * b];
        for i in 0..b {
            for j in 0..b {
                let mut s = 0.0;
                for k in 0..b {
                    s += lw[i * b + k] * lw[j * b + k];
                }
                out[i * b + j] = s;
            }
        }
        out
    }

    #[test]
    fn potrf_dp_reconstructs() {
        let (mut t, a) = spd_tile(8, 1, Precision::Double);
        potrf(&mut t).unwrap();
        let r = reconstruct_llt(&t);
        for (x, y) in r.iter().zip(&a) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
        // Strict upper triangle must be zero.
        for i in 0..8 {
            for j in i + 1..8 {
                assert_eq!(t.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn potrf_sp_error_scales_with_roundoff() {
        let (mut t, a) = spd_tile(8, 2, Precision::Single);
        potrf(&mut t).unwrap();
        let r = reconstruct_llt(&t);
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let err: f64 = r
            .iter()
            .zip(&a)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let rel = err / norm;
        assert!(rel < 50.0 * Precision::Single.unit_roundoff(), "rel={rel}");
        assert!(
            rel > 0.01 * Precision::Double.unit_roundoff(),
            "suspiciously exact"
        );
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut t = Tile::from_f64(2, &[1.0, 2.0, 2.0, 1.0], Precision::Double);
        let e = potrf(&mut t).unwrap_err();
        assert_eq!(e.pivot, 1);
        assert!(e.value <= 0.0);
    }

    #[test]
    fn trsm_solves_against_reference() {
        let b = 6;
        let (mut l, _) = spd_tile(b, 3, Precision::Double);
        potrf(&mut l).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let bv: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = Tile::from_f64(b, &bv, Precision::Double);
        trsm(&l, &mut x);
        // Check X · Lᵀ == B.
        let xw = x.to_f64();
        let lw = l.to_f64();
        for i in 0..b {
            for j in 0..b {
                let mut s = 0.0;
                for k in 0..b {
                    s += xw[i * b + k] * lw[j * b + k];
                }
                assert!((s - bv[i * b + j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_matches_reference_in_dp() {
        let b = 5;
        let mut rng = StdRng::seed_from_u64(5);
        let av: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bv: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cv: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = Tile::from_f64(b, &av, Precision::Double);
        let bt = Tile::from_f64(b, &bv, Precision::Double);
        let mut c = Tile::from_f64(b, &cv, Precision::Double);
        gemm(&a, &bt, &mut c);
        for i in 0..b {
            for j in 0..b {
                let mut s = cv[i * b + j];
                for k in 0..b {
                    s -= av[i * b + k] * bv[j * b + k];
                }
                assert!((c.get(i, j) - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hp_gemm_quantizes_operands_but_accumulates_in_f32() {
        let b = 4;
        // Operand value that is NOT representable in binary16.
        let v = 1.0 + 1.0 / 4096.0;
        let av = vec![v; b * b];
        let bv = vec![1.0; b * b];
        let a = Tile::from_f64(b, &av, Precision::Double);
        let bt = Tile::from_f64(b, &bv, Precision::Double);
        let mut c = Tile::zeros(b, Precision::Half);
        gemm(&a, &bt, &mut c);
        // Quantized operand is exactly 1.0 in f16, so C = −b·1·1 = −4 exactly:
        // f32 accumulation of 4 identical products has no extra error here.
        for i in 0..b {
            for j in 0..b {
                assert_eq!(c.get(i, j), -(b as f64));
            }
        }
    }

    #[test]
    fn syrk_keeps_symmetry() {
        let b = 6;
        let mut rng = StdRng::seed_from_u64(7);
        let av: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (mut c, _) = spd_tile(b, 8, Precision::Double);
        let a = Tile::from_f64(b, &av, Precision::Double);
        syrk(&a, &mut c);
        for i in 0..b {
            for j in 0..b {
                assert_eq!(c.get(i, j), c.get(j, i), "symmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn syrk_matches_gemm_with_self() {
        let b = 5;
        let mut rng = StdRng::seed_from_u64(9);
        let av: Vec<f64> = (0..b * b).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let cv: Vec<f64> = {
            // symmetric start
            let mut m = vec![0.0; b * b];
            for i in 0..b {
                for j in 0..=i {
                    let x = rng.gen_range(-1.0..1.0);
                    m[i * b + j] = x;
                    m[j * b + i] = x;
                }
            }
            m
        };
        let a = Tile::from_f64(b, &av, Precision::Double);
        let mut c1 = Tile::from_f64(b, &cv, Precision::Double);
        let mut c2 = Tile::from_f64(b, &cv, Precision::Double);
        syrk(&a, &mut c1);
        gemm(&a, &a, &mut c2);
        for i in 0..b {
            for j in 0..b {
                assert!((c1.get(i, j) - c2.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(flops::gemm(10), 2000.0);
        assert_eq!(flops::trsm(10), 1000.0);
        assert_eq!(flops::syrk(10), 1000.0);
        assert!((flops::potrf(10) - 1000.0 / 3.0).abs() < 1e-12);
        assert!((flops::cholesky(30.0) - 9000.0).abs() < 1e-9);
    }
}
