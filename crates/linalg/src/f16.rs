//! Software IEEE 754 binary16 ("half precision").
//!
//! The offline crate list has no `half`, so the conversion pair is
//! implemented here: `f32 → f16` with round-to-nearest-even (the rounding
//! GPUs use when writing HP tiles) and the exact `f16 → f32` widening.
//! Arithmetic is *not* implemented on `Half` itself: kernels widen to `f32`,
//! accumulate there, and round once on store — exactly the tensor-core MMA
//! contract the paper's DP/HP variant relies on.

/// An IEEE binary16 value stored as its bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Half(pub u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Largest finite value, 65504.
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest positive subnormal, 2⁻²⁴.
    pub const MIN_POSITIVE_SUBNORMAL: Half = Half(0x0001);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);

    /// Convert from `f32` with round-to-nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> Half {
        Half(f32_to_f16_bits(x))
    }

    /// Convert from `f64` (via `f64 → f32 → f16`; double rounding is
    /// harmless here because f32 keeps 13 extra mantissa bits).
    #[inline]
    pub fn from_f64(x: f64) -> Half {
        Half(f32_to_f16_bits(x as f32))
    }

    /// Widen exactly to `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widen exactly to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True for NaN payloads.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Unit roundoff of binary16 (2⁻¹¹ for round-to-nearest).
    pub const UNIT_ROUNDOFF: f64 = 1.0 / 2048.0;
}

/// `f32 → f16` bit conversion with round-to-nearest-even, handling
/// overflow (→ ±∞), subnormals, and NaN propagation.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf or NaN; keep a nonzero mantissa bit for NaN.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let he = exp - 127 + 15; // half exponent field value before clamping
    if he >= 0x1F {
        return sign | 0x7C00; // overflow → inf
    }
    if he <= 0 {
        // Subnormal half (or underflow to zero).
        if he < -10 {
            return sign; // underflows past the smallest subnormal
        }
        let m = mant | 0x0080_0000; // restore implicit bit
        let shift = (14 - he) as u32; // 24-bit significand → 10-bit subnormal
        let half = (m >> shift) as u16;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = half;
        if rem > halfway || (rem == halfway && (h & 1) == 1) {
            h += 1;
        }
        return sign | h;
    }
    // Normal half.
    let mut h = ((he as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1FFF;
    if rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1) {
        h += 1; // carry may roll into the exponent — that is correct RNE
    }
    sign | (h as u16)
}

/// Exact `f16 → f32` widening.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1F;
    let mant = (h & 0x03FF) as u32;
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: mant × 2⁻²⁴.
        let v = mant as f32 * (-24f32).exp2();
        return if sign != 0 { -v } else { v };
    }
    if exp == 0x1F {
        return f32::from_bits(sign | 0x7F80_0000 | (mant << 13));
    }
    f32::from_bits(sign | ((exp as u32 + 112) << 23) | (mant << 13))
}

/// Quantize a whole slice to binary16 and back — the "stored at HP" view of
/// data used when a tile is demoted.
pub fn quantize_slice(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| Half::from_f64(x).to_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_constants() {
        assert_eq!(Half::from_f32(0.0).0, 0x0000);
        assert_eq!(Half::from_f32(-0.0).0, 0x8000);
        assert_eq!(Half::from_f32(1.0).0, 0x3C00);
        assert_eq!(Half::from_f32(-2.0).0, 0xC000);
        assert_eq!(Half::from_f32(0.5).0, 0x3800);
        assert_eq!(Half::from_f32(65504.0).0, 0x7BFF);
        assert_eq!(Half::from_f32(f32::INFINITY).0, 0x7C00);
        assert_eq!(Half::from_f32(-f32::INFINITY).0, 0xFC00);
        assert!(Half::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn widening_known_values() {
        assert_eq!(Half(0x3C00).to_f32(), 1.0);
        assert_eq!(Half(0xC000).to_f32(), -2.0);
        assert_eq!(Half(0x7BFF).to_f32(), 65504.0);
        assert_eq!(Half(0x0001).to_f32(), (-24f32).exp2());
        assert_eq!(Half(0x0400).to_f32(), (-14f32).exp2()); // smallest normal
        assert!(Half(0x7C00).to_f32().is_infinite());
        assert!(Half(0x7E00).to_f32().is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(Half::from_f32(65520.0).0, 0x7C00); // rounds up past MAX
        assert_eq!(Half::from_f32(1e9).0, 0x7C00);
        assert_eq!(Half::from_f32(-1e9).0, 0xFC00);
        // 65519.996… rounds to 65504 (largest finite).
        assert_eq!(Half::from_f32(65519.0).0, 0x7BFF);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        assert_eq!(Half::from_f32(1e-10).0, 0x0000);
        let tiny = (-24f32).exp2();
        assert_eq!(Half::from_f32(tiny).0, 0x0001);
        // Halfway between 0 and the smallest subnormal → even (zero).
        assert_eq!(Half::from_f32(tiny / 2.0).0, 0x0000);
        // Just above halfway rounds up.
        assert_eq!(Half::from_f32(tiny * 0.51).0, 0x0001);
    }

    #[test]
    fn round_to_nearest_even_at_ties() {
        // 1 + 2^-11 is exactly between 1.0 (even) and 1 + 2^-10 → 1.0.
        let tie = 1.0f32 + (-11f32).exp2();
        assert_eq!(Half::from_f32(tie).0, 0x3C00);
        // 1 + 3·2^-11 is between 1+2^-10 (odd) and 1+2^-9 (even) → round up.
        let tie2 = 1.0f32 + 3.0 * (-11f32).exp2();
        assert_eq!(Half::from_f32(tie2).0, 0x3C02);
    }

    #[test]
    fn relative_error_bounded_by_unit_roundoff() {
        for k in 0..2000 {
            let x = -8.0 + k as f64 * 0.008;
            if x == 0.0 {
                continue;
            }
            let h = Half::from_f64(x).to_f64();
            let rel = ((h - x) / x).abs();
            assert!(rel <= Half::UNIT_ROUNDOFF * 1.0001, "x={x}: rel={rel}");
        }
    }

    #[test]
    fn quantize_slice_idempotent() {
        let xs = [0.1, -3.7, 1024.5, 1e-6];
        let q1 = quantize_slice(&xs);
        let q2 = quantize_slice(&q1);
        assert_eq!(q1, q2);
    }

    proptest! {
        #[test]
        fn roundtrip_f16_f32_f16_is_identity(bits in 0u16..=0xFFFF) {
            let h = Half(bits);
            if !h.is_nan() {
                let back = Half::from_f32(h.to_f32());
                prop_assert_eq!(back.0, bits);
            }
        }

        #[test]
        fn conversion_is_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let hl = Half::from_f32(lo).to_f32();
            let hh = Half::from_f32(hi).to_f32();
            prop_assert!(hl <= hh, "monotonicity: {lo}->{hl}, {hi}->{hh}");
        }
    }
}
