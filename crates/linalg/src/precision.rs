//! Precision lattice and tile-assignment policies.
//!
//! The paper evaluates four variants of the covariance Cholesky (§IV.B):
//! full DP; a diagonal DP band with the rest SP (DP/SP); DP band, 5% SP,
//! rest HP (DP/SP/HP); and DP band with the rest HP (DP/HP). Assignment is
//! by band distance from the diagonal — tiles near the diagonal carry the
//! strongest correlations — or adaptively from tile norms (the tile-centric
//! approach of ref. \[47\]).

use serde::{Deserialize, Serialize};

/// Storage/compute precision of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE binary16, multiply–accumulate in f32 (tensor-core semantics).
    Half,
    /// IEEE binary32.
    Single,
    /// IEEE binary64.
    Double,
}

impl Precision {
    /// Bytes per matrix element in this precision.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Half => 2,
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Unit roundoff (round-to-nearest).
    pub fn unit_roundoff(self) -> f64 {
        match self {
            Precision::Half => 1.0 / 2048.0,                // 2^-11
            Precision::Single => f32::EPSILON as f64 / 2.0, // 2^-24
            Precision::Double => f64::EPSILON / 2.0,        // 2^-53
        }
    }

    /// Short label used in reports ("DP", "SP", "HP").
    pub fn label(self) -> &'static str {
        match self {
            Precision::Half => "HP",
            Precision::Single => "SP",
            Precision::Double => "DP",
        }
    }

    /// The wider of two precisions.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

/// How precisions are assigned to the tiles of a symmetric tiled matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrecisionPolicy {
    /// Every tile in one precision.
    Uniform(Precision),
    /// Band-based: tile `(i, j)` gets DP when `|i−j| < dp_band`, SP when
    /// `|i−j| < dp_band + sp_band`, HP otherwise.
    Band {
        /// Width (in tiles) of the double-precision diagonal band.
        dp_band: usize,
        /// Width (in tiles) of the single-precision band outside it.
        sp_band: usize,
    },
    /// Norm-adaptive: relative to the largest tile Frobenius norm, tiles
    /// above `dp_threshold` stay DP, above `sp_threshold` SP, else HP.
    Adaptive {
        /// Relative norm above which a tile stays double precision.
        dp_threshold: f64,
        /// Relative norm above which a tile is single precision.
        sp_threshold: f64,
    },
}

impl PrecisionPolicy {
    /// The paper's reference variant: all DP.
    pub fn dp() -> Self {
        PrecisionPolicy::Uniform(Precision::Double)
    }

    /// DP diagonal band (width 1), SP elsewhere — the paper's "DP/SP".
    pub fn dp_sp() -> Self {
        PrecisionPolicy::Band {
            dp_band: 1,
            sp_band: usize::MAX,
        }
    }

    /// DP band, ~5% of the off-diagonal as SP, rest HP — "DP/SP/HP".
    /// `nt` is the tile count per dimension; 5% of the band distance
    /// range is given to SP.
    pub fn dp_sp_hp(nt: usize) -> Self {
        PrecisionPolicy::Band {
            dp_band: 1,
            sp_band: (nt / 20).max(1),
        }
    }

    /// DP band, HP elsewhere — the paper's fastest "DP/HP".
    pub fn dp_hp() -> Self {
        PrecisionPolicy::Band {
            dp_band: 1,
            sp_band: 0,
        }
    }

    /// Decide the precision of tile `(i, j)` (row ≥ col in the lower
    /// triangle). `rel_norm` is the tile's Frobenius norm relative to the
    /// largest tile norm, used only by the adaptive policy.
    pub fn assign(&self, i: usize, j: usize, rel_norm: f64) -> Precision {
        let dist = i.abs_diff(j);
        match *self {
            PrecisionPolicy::Uniform(p) => p,
            PrecisionPolicy::Band { dp_band, sp_band } => {
                if dist < dp_band {
                    Precision::Double
                } else if sp_band == usize::MAX || dist < dp_band + sp_band {
                    Precision::Single
                } else {
                    Precision::Half
                }
            }
            PrecisionPolicy::Adaptive {
                dp_threshold,
                sp_threshold,
            } => {
                if i == j || rel_norm >= dp_threshold {
                    Precision::Double
                } else if rel_norm >= sp_threshold {
                    Precision::Single
                } else {
                    Precision::Half
                }
            }
        }
    }

    /// Report label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match *self {
            PrecisionPolicy::Uniform(p) => p.label().to_string(),
            PrecisionPolicy::Band {
                sp_band: usize::MAX,
                ..
            } => "DP/SP".to_string(),
            PrecisionPolicy::Band { sp_band: 0, .. } => "DP/HP".to_string(),
            PrecisionPolicy::Band { .. } => "DP/SP/HP".to_string(),
            PrecisionPolicy::Adaptive { .. } => "adaptive".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_bytes() {
        assert!(Precision::Double > Precision::Single);
        assert!(Precision::Single > Precision::Half);
        assert_eq!(Precision::Double.bytes(), 8);
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Half.bytes(), 2);
        assert_eq!(Precision::Half.max(Precision::Double), Precision::Double);
    }

    #[test]
    fn unit_roundoffs_are_ordered() {
        assert!(Precision::Double.unit_roundoff() < Precision::Single.unit_roundoff());
        assert!(Precision::Single.unit_roundoff() < Precision::Half.unit_roundoff());
        assert_eq!(Precision::Half.unit_roundoff(), 2f64.powi(-11));
    }

    #[test]
    fn band_policy_dp_sp() {
        let p = PrecisionPolicy::dp_sp();
        assert_eq!(p.assign(3, 3, 1.0), Precision::Double);
        assert_eq!(p.assign(5, 3, 1.0), Precision::Single);
        assert_eq!(p.assign(20, 0, 1.0), Precision::Single);
        assert_eq!(p.label(), "DP/SP");
    }

    #[test]
    fn band_policy_dp_hp() {
        let p = PrecisionPolicy::dp_hp();
        assert_eq!(p.assign(4, 4, 1.0), Precision::Double);
        assert_eq!(p.assign(5, 4, 1.0), Precision::Half);
        assert_eq!(p.label(), "DP/HP");
    }

    #[test]
    fn band_policy_three_level() {
        let p = PrecisionPolicy::dp_sp_hp(40); // sp_band = 2
        assert_eq!(p.assign(7, 7, 1.0), Precision::Double);
        assert_eq!(p.assign(8, 7, 1.0), Precision::Single);
        assert_eq!(p.assign(9, 7, 1.0), Precision::Single);
        assert_eq!(p.assign(10, 7, 1.0), Precision::Half);
        assert_eq!(p.label(), "DP/SP/HP");
    }

    #[test]
    fn adaptive_policy_uses_norms() {
        let p = PrecisionPolicy::Adaptive {
            dp_threshold: 0.5,
            sp_threshold: 0.01,
        };
        assert_eq!(p.assign(2, 2, 0.0), Precision::Double); // diagonal always DP
        assert_eq!(p.assign(9, 1, 0.9), Precision::Double);
        assert_eq!(p.assign(9, 1, 0.1), Precision::Single);
        assert_eq!(p.assign(9, 1, 0.001), Precision::Half);
    }

    #[test]
    fn uniform_label() {
        assert_eq!(PrecisionPolicy::dp().label(), "DP");
    }
}
