//! Sequential mixed-precision tile Cholesky and its quality metrics.
//!
//! This is the algorithmic reference for the task-parallel version in
//! `exaclim-runtime`: the right-looking tile algorithm of §II.C —
//! `POTRF(k,k)`; `TRSM(i,k)` down the panel; `SYRK(i,i)`/`GEMM(i,j)` on the
//! trailing submatrix — where every update runs in the precision of the tile
//! it touches.

use crate::kernels::{self, NotPositiveDefinite};
use crate::precision::Precision;
use crate::tiled::TiledMatrix;

/// Execution statistics of one tile Cholesky.
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyStats {
    /// Matrix dimension.
    pub n: usize,
    /// Tile side.
    pub b: usize,
    /// Kernel invocation counts `(potrf, trsm, syrk, gemm)`.
    pub kernel_counts: (usize, usize, usize, usize),
    /// Flops executed per precision `[half, single, double]`.
    pub flops_by_precision: [f64; 3],
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl CholeskyStats {
    /// Total flops across precisions.
    pub fn total_flops(&self) -> f64 {
        self.flops_by_precision.iter().sum()
    }

    /// Achieved flop rate in GFlop/s.
    pub fn gflops(&self) -> f64 {
        self.total_flops() / self.seconds / 1e9
    }
}

fn bucket(p: Precision) -> usize {
    match p {
        Precision::Half => 0,
        Precision::Single => 1,
        Precision::Double => 2,
    }
}

/// Factor a [`TiledMatrix`] in place: on return the lower triangle of tiles
/// holds `L` with `A = L Lᵀ` (up to mixed-precision rounding).
pub fn tile_cholesky(a: &mut TiledMatrix) -> Result<CholeskyStats, NotPositiveDefinite> {
    let start = std::time::Instant::now();
    let nt = a.nt();
    let b = a.b();
    let mut counts = (0usize, 0usize, 0usize, 0usize);
    let mut flops = [0.0f64; 3];
    for k in 0..nt {
        kernels::potrf(a.tile_mut(k, k))?;
        counts.0 += 1;
        flops[bucket(a.tile(k, k).precision())] += kernels::flops::potrf(b);
        let lkk = a.tile(k, k).clone();
        for i in k + 1..nt {
            kernels::trsm(&lkk, a.tile_mut(i, k));
            counts.1 += 1;
            flops[bucket(a.tile(i, k).precision())] += kernels::flops::trsm(b);
        }
        for i in k + 1..nt {
            let aik = a.tile(i, k).clone();
            kernels::syrk(&aik, a.tile_mut(i, i));
            counts.2 += 1;
            flops[bucket(a.tile(i, i).precision())] += kernels::flops::syrk(b);
            for j in k + 1..i {
                let ajk = a.tile(j, k).clone();
                kernels::gemm(&aik, &ajk, a.tile_mut(i, j));
                counts.3 += 1;
                flops[bucket(a.tile(i, j).precision())] += kernels::flops::gemm(b);
            }
        }
    }
    Ok(CholeskyStats {
        n: a.n(),
        b,
        kernel_counts: counts,
        flops_by_precision: flops,
        seconds: start.elapsed().as_secs_f64().max(1e-12),
    })
}

/// Relative factorization residual `‖A − L Lᵀ‖_F / ‖A‖_F` given the original
/// dense matrix and the factored tiled matrix.
pub fn factorization_residual(original: &[f64], factored: &TiledMatrix) -> f64 {
    let n = factored.n();
    assert_eq!(original.len(), n * n);
    let l = factored.to_dense_lower();
    let mut err = 0.0f64;
    let mut nrm = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..=i.min(j) {
                s += l[i * n + k] * l[j * n + k];
            }
            let d = s - original[i * n + j];
            err += d * d;
            nrm += original[i * n + j] * original[i * n + j];
        }
    }
    (err / nrm).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::PrecisionPolicy;
    use crate::tiled::exp_covariance;

    fn run(n: usize, b: usize, policy: PrecisionPolicy, rho: f64) -> (f64, CholeskyStats) {
        let a = exp_covariance(n, rho, 1e-3);
        let mut tm = TiledMatrix::from_dense(&a, n, b, &policy);
        let stats = tile_cholesky(&mut tm).expect("SPD input");
        (factorization_residual(&a, &tm), stats)
    }

    #[test]
    fn dp_matches_dense_reference() {
        let n = 32;
        let a = exp_covariance(n, 4.0, 1e-3);
        let mut tm = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp());
        tile_cholesky(&mut tm).unwrap();
        let tiled_l = tm.to_dense_lower();
        let dense_l = crate::dense::Matrix::from_vec(n, n, a.clone())
            .cholesky_lower()
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (tiled_l[i * n + j] - dense_l.get(i, j)).abs() < 1e-11,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn dp_residual_is_machine_level() {
        let (res, stats) = run(48, 8, PrecisionPolicy::dp(), 6.0);
        assert!(res < 1e-13, "res={res}");
        assert_eq!(stats.kernel_counts.0, 6); // nt potrf
        assert_eq!(stats.kernel_counts.1, 15); // nt(nt-1)/2 trsm
        assert_eq!(stats.kernel_counts.2, 15); // syrk
        assert_eq!(stats.kernel_counts.3, 20); // nt(nt-1)(nt-2)/6 gemm
    }

    #[test]
    fn residual_ordering_follows_precision() {
        // DP < DP/SP < DP/HP in accuracy; all should succeed on a
        // well-conditioned covariance.
        let (r_dp, _) = run(48, 8, PrecisionPolicy::dp(), 4.0);
        let (r_sp, _) = run(48, 8, PrecisionPolicy::dp_sp(), 4.0);
        let (r_hp, _) = run(48, 8, PrecisionPolicy::dp_hp(), 4.0);
        assert!(r_dp < r_sp, "dp={r_dp} sp={r_sp}");
        assert!(r_sp < r_hp, "sp={r_sp} hp={r_hp}");
        // And the magnitudes track unit roundoffs (loose factors).
        assert!(r_sp < 1e-4, "sp residual too large: {r_sp}");
        assert!(r_hp < 0.05, "hp residual too large: {r_hp}");
    }

    #[test]
    fn flops_accounting_sums_to_n3_over_3() {
        let (_, stats) = run(64, 16, PrecisionPolicy::dp_sp(), 8.0);
        let expect = kernels::flops::cholesky(64.0);
        let got = stats.total_flops();
        // Tile accounting matches the dense count to leading order; for
        // nt=4 the exact tile sum is n³/3 + lower-order terms.
        assert!((got - expect).abs() / expect < 0.2, "{got} vs {expect}");
    }

    #[test]
    fn mixed_precision_flops_split_by_policy() {
        let (_, stats) = run(64, 8, PrecisionPolicy::dp_hp(), 8.0);
        let [hp, sp, dp] = stats.flops_by_precision;
        assert_eq!(sp, 0.0);
        assert!(hp > 0.0 && dp > 0.0);
        // Off-diagonal GEMMs dominate: HP flops must exceed DP flops.
        assert!(hp > dp, "hp={hp} dp={dp}");
    }

    #[test]
    fn spd_failure_surfaces() {
        let n = 16;
        let mut a = exp_covariance(n, 2.0, 0.0);
        // Corrupt the matrix to be indefinite.
        a[0] = -5.0;
        let mut tm = TiledMatrix::from_dense(&a, n, 4, &PrecisionPolicy::dp());
        assert!(tile_cholesky(&mut tm).is_err());
    }

    #[test]
    fn sampling_with_factored_matrix_reproduces_covariance() {
        // End-to-end: factor Σ, generate x = L η, check sample covariance —
        // this is exactly how the emulator consumes the factor.
        use exaclim_mathkit::rng::MultivariateNormal;
        use rand::SeedableRng;
        let n = 16;
        let a = exp_covariance(n, 3.0, 1e-6);
        let mut tm = TiledMatrix::from_dense(&a, n, 4, &PrecisionPolicy::dp());
        tile_cholesky(&mut tm).unwrap();
        let l = tm.to_dense_lower();
        let mut mvn = MultivariateNormal::from_lower_factor(vec![0.0; n], &l, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let m = 40_000;
        let mut cov = vec![0.0f64; n * n];
        for _ in 0..m {
            let x = mvn.sample(&mut rng);
            for i in 0..n {
                for j in 0..n {
                    cov[i * n + j] += x[i] * x[j];
                }
            }
        }
        for (c, truth) in cov.iter_mut().zip(&a) {
            *c /= m as f64;
            assert!((*c - truth).abs() < 0.05, "{c} vs {truth}");
        }
    }
}
