//! Tiled symmetric matrices with per-tile precision.
//!
//! The covariance matrix `U ∈ R^{L²×L²}` of the emulator is symmetric
//! positive definite; only its lower triangle of tiles is stored. Each tile
//! carries its own storage precision, assigned by a [`PrecisionPolicy`] —
//! strong correlations live near the diagonal, so band-based demotion
//! matches the data's covariance strength exactly as in the paper (§III.D).

use crate::precision::{Precision, PrecisionPolicy};
use crate::tile::Tile;

/// A symmetric `n × n` matrix stored as `nt × nt` lower-triangle tiles of
/// side `b` (`n = nt · b`).
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    n: usize,
    b: usize,
    nt: usize,
    /// Lower triangle, packed row-major: tile `(i, j)` with `j ≤ i` lives at
    /// `i(i+1)/2 + j`.
    tiles: Vec<Tile>,
}

impl TiledMatrix {
    /// Split a dense symmetric matrix (row-major, length `n²`) into tiles
    /// with precisions assigned by `policy`. `n` must be divisible by `b`.
    pub fn from_dense(dense: &[f64], n: usize, b: usize, policy: &PrecisionPolicy) -> Self {
        assert_eq!(dense.len(), n * n, "dense payload must be n²");
        assert!(
            b >= 1 && n.is_multiple_of(b),
            "tile size must divide n (n={n}, b={b})"
        );
        let nt = n / b;
        // Pass 1: tile Frobenius norms for the adaptive policy.
        let mut norms = vec![0.0f64; nt * (nt + 1) / 2];
        let mut max_norm = 0.0f64;
        for i in 0..nt {
            for j in 0..=i {
                let mut s = 0.0;
                for r in 0..b {
                    let row = (i * b + r) * n + j * b;
                    for c in 0..b {
                        let v = dense[row + c];
                        s += v * v;
                    }
                }
                let nrm = s.sqrt();
                norms[i * (i + 1) / 2 + j] = nrm;
                max_norm = max_norm.max(nrm);
            }
        }
        let max_norm = max_norm.max(f64::MIN_POSITIVE);
        // Pass 2: build tiles.
        let mut tiles = Vec::with_capacity(nt * (nt + 1) / 2);
        let mut buf = vec![0.0f64; b * b];
        for i in 0..nt {
            for j in 0..=i {
                for r in 0..b {
                    let src = (i * b + r) * n + j * b;
                    buf[r * b..(r + 1) * b].copy_from_slice(&dense[src..src + b]);
                }
                let rel = norms[i * (i + 1) / 2 + j] / max_norm;
                let p = policy.assign(i, j, rel);
                tiles.push(Tile::from_f64(b, &buf, p));
            }
        }
        Self { n, b, nt, tiles }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile side.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Tiles per dimension.
    pub fn nt(&self) -> usize {
        self.nt
    }

    #[inline]
    fn tidx(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i < self.nt);
        i * (i + 1) / 2 + j
    }

    /// Borrow tile `(i, j)` of the lower triangle.
    pub fn tile(&self, i: usize, j: usize) -> &Tile {
        &self.tiles[self.tidx(i, j)]
    }

    /// Mutably borrow tile `(i, j)`.
    pub fn tile_mut(&mut self, i: usize, j: usize) -> &mut Tile {
        let k = self.tidx(i, j);
        &mut self.tiles[k]
    }

    /// Reassemble the full symmetric dense matrix (upper mirrored from
    /// lower).
    pub fn to_dense(&self) -> Vec<f64> {
        let n = self.n;
        let b = self.b;
        let mut out = vec![0.0f64; n * n];
        for i in 0..self.nt {
            for j in 0..=i {
                let t = self.tile(i, j);
                for r in 0..b {
                    for c in 0..b {
                        let v = t.get(r, c);
                        out[(i * b + r) * n + (j * b + c)] = v;
                        out[(j * b + c) * n + (i * b + r)] = v;
                    }
                }
            }
        }
        out
    }

    /// Reassemble only the lower triangle (upper zero) — the factor `L`
    /// after a Cholesky.
    pub fn to_dense_lower(&self) -> Vec<f64> {
        let n = self.n;
        let b = self.b;
        let mut out = vec![0.0f64; n * n];
        for i in 0..self.nt {
            for j in 0..=i {
                let t = self.tile(i, j);
                for r in 0..b {
                    for c in 0..b {
                        let (gr, gc) = (i * b + r, j * b + c);
                        if gc <= gr {
                            out[gr * n + gc] = t.get(r, c);
                        }
                    }
                }
            }
        }
        out
    }

    /// Total payload bytes across all tiles (the memory the paper's
    /// mixed-precision variants shrink).
    pub fn payload_bytes(&self) -> usize {
        self.tiles.iter().map(Tile::bytes).sum()
    }

    /// Tiles per precision: `[half, single, double]`.
    pub fn precision_census(&self) -> [usize; 3] {
        let mut c = [0usize; 3];
        for t in &self.tiles {
            match t.precision() {
                Precision::Half => c[0] += 1,
                Precision::Single => c[1] += 1,
                Precision::Double => c[2] += 1,
            }
        }
        c
    }
}

/// Build the dense exponential covariance matrix
/// `A[i][j] = exp(−|i−j|/ρ) + nugget·δ_{ij}` — SPD, with correlation
/// strength decaying away from the diagonal exactly like the spatial
/// covariances the paper's band policies exploit.
pub fn exp_covariance(n: usize, rho: f64, nugget: f64) -> Vec<f64> {
    assert!(n >= 1 && rho > 0.0);
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let d = i.abs_diff(j) as f64;
            a[i * n + j] = (-d / rho).exp() + if i == j { nugget } else { 0.0 };
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let n = 12;
        let a = exp_covariance(n, 3.0, 0.01);
        let tm = TiledMatrix::from_dense(&a, n, 4, &PrecisionPolicy::dp());
        assert_eq!(tm.nt(), 3);
        let back = tm.to_dense();
        for (x, y) in a.iter().zip(&back) {
            assert_eq!(x, y, "DP tiling must be lossless");
        }
    }

    #[test]
    fn band_policy_assigns_expected_precisions() {
        let n = 16;
        let a = exp_covariance(n, 2.0, 0.0);
        let tm = TiledMatrix::from_dense(&a, n, 4, &PrecisionPolicy::dp_hp());
        for i in 0..4 {
            for j in 0..=i {
                let expect = if i == j {
                    Precision::Double
                } else {
                    Precision::Half
                };
                assert_eq!(tm.tile(i, j).precision(), expect, "({i},{j})");
            }
        }
        let [hp, sp, dp] = tm.precision_census();
        assert_eq!((hp, sp, dp), (6, 0, 4));
    }

    #[test]
    fn adaptive_policy_demotes_weak_tiles() {
        let n = 32;
        // Fast decay: far tiles are numerically tiny.
        let a = exp_covariance(n, 0.5, 0.0);
        let policy = PrecisionPolicy::Adaptive {
            dp_threshold: 0.5,
            sp_threshold: 1e-3,
        };
        let tm = TiledMatrix::from_dense(&a, n, 8, &policy);
        assert_eq!(tm.tile(0, 0).precision(), Precision::Double);
        assert_eq!(
            tm.tile(3, 0).precision(),
            Precision::Half,
            "far corner is weak"
        );
    }

    #[test]
    fn payload_bytes_shrink_with_demotion() {
        let n = 32;
        let a = exp_covariance(n, 4.0, 0.0);
        let dp = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp());
        let hp = TiledMatrix::from_dense(&a, n, 8, &PrecisionPolicy::dp_hp());
        assert!(hp.payload_bytes() < dp.payload_bytes());
        // 4 diagonal DP tiles + 6 HP tiles vs 10 DP tiles.
        assert_eq!(dp.payload_bytes(), 10 * 64 * 8);
        assert_eq!(hp.payload_bytes(), 4 * 64 * 8 + 6 * 64 * 2);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_nondividing_tile_size() {
        let a = exp_covariance(10, 1.0, 0.0);
        let _ = TiledMatrix::from_dense(&a, 10, 4, &PrecisionPolicy::dp());
    }

    #[test]
    fn exp_covariance_is_symmetric_with_unit_diag() {
        let n = 9;
        let a = exp_covariance(n, 2.5, 0.0);
        for i in 0..n {
            assert_eq!(a[i * n + i], 1.0);
            for j in 0..n {
                assert_eq!(a[i * n + j], a[j * n + i]);
            }
        }
    }
}
