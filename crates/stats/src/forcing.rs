//! Radiative-forcing trajectories.
//!
//! The mean trend of eq. (2) regresses temperature on the annual radiative
//! forcing `x_{⌈t/τ⌉}` and its exponentially weighted past. ERA5-era
//! historical forcing is approximated by a smooth CO₂-dominated ramp; any
//! user-supplied series can be wrapped in [`ForcingSeries`].

use serde::{Deserialize, Serialize};

/// An annual radiative-forcing series covering `start_year ..= end_year`,
/// with spin-up history so lagged regressors are defined from the first
/// training step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForcingSeries {
    start_year: i64,
    values: Vec<f64>,
}

impl ForcingSeries {
    /// Wrap explicit annual values beginning at `start_year`.
    pub fn new(start_year: i64, values: Vec<f64>) -> Self {
        assert!(!values.is_empty());
        Self { start_year, values }
    }

    /// Synthetic historical-like forcing: logarithmic CO₂ ramp
    /// `F(y) = 5.35 · ln(C(y)/278)` with `C(y)` following an accelerating
    /// concentration path, over `start..=end` with `spinup` extra years of
    /// history before `start`.
    pub fn historical_like(start: i64, end: i64, spinup: usize) -> Self {
        assert!(end >= start);
        let first = start - spinup as i64;
        let values = (first..=end)
            .map(|y| {
                // Concentration: 278 ppm pre-industrial, accelerating growth
                // reaching ~420 ppm by 2022.
                let t = (y - 1850) as f64;
                let conc = 278.0 + 145.0 * (t / 172.0).max(0.0).powf(2.2);
                5.35 * (conc / 278.0_f64).ln()
            })
            .collect();
        Self {
            start_year: first,
            values,
        }
    }

    /// First year with data (including spin-up).
    pub fn first_year(&self) -> i64 {
        self.start_year
    }

    /// Last year with data.
    pub fn last_year(&self) -> i64 {
        self.start_year + self.values.len() as i64 - 1
    }

    /// Forcing at `year`, clamped to the series ends.
    pub fn at(&self, year: i64) -> f64 {
        let idx = (year - self.start_year).clamp(0, self.values.len() as i64 - 1);
        self.values[idx as usize]
    }

    /// The exponentially lagged regressor of eq. (2):
    /// `Lag_ρ(y) = Σ_{s≥1} ρ^{s−1} x_{y−s}`, evaluated by the recursion
    /// `Lag(y) = x_{y−1} + ρ·Lag(y−1)` over the available history.
    pub fn lagged(&self, year: i64, rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "ρ must be in [0,1)");
        let mut lag = 0.0;
        let from = self.start_year + 1;
        for y in from..=year {
            lag = self.at(y - 1) + rho * lag;
        }
        lag
    }

    /// Precompute `Lag_ρ` for every year of a range (recursion shared across
    /// calls; O(range) total).
    pub fn lagged_series(&self, start: i64, end: i64, rho: f64) -> Vec<f64> {
        assert!(end >= start);
        let mut out = Vec::with_capacity((end - start + 1) as usize);
        let mut lag = 0.0;
        for y in (self.start_year + 1)..=end {
            lag = self.at(y - 1) + rho * lag;
            if y >= start {
                out.push(lag);
            }
        }
        // Degenerate: start == series start (no history) — pad front.
        while out.len() < (end - start + 1) as usize {
            out.insert(0, 0.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historical_ramp_is_monotone_recent() {
        let f = ForcingSeries::historical_like(1940, 2022, 10);
        assert_eq!(f.first_year(), 1930);
        assert_eq!(f.last_year(), 2022);
        for y in 1950..2022 {
            assert!(f.at(y + 1) > f.at(y), "forcing must grow after 1950");
        }
        // Order of magnitude: ~2.2 W/m² by 2022 for CO₂ alone.
        assert!(
            f.at(2022) > 1.5 && f.at(2022) < 3.5,
            "F(2022)={}",
            f.at(2022)
        );
    }

    #[test]
    fn clamping_at_ends() {
        let f = ForcingSeries::new(2000, vec![1.0, 2.0, 3.0]);
        assert_eq!(f.at(1990), 1.0);
        assert_eq!(f.at(2002), 3.0);
        assert_eq!(f.at(2050), 3.0);
    }

    #[test]
    fn lagged_matches_direct_sum() {
        let f = ForcingSeries::new(0, (0..50).map(|i| (i as f64 * 0.3).sin() + 2.0).collect());
        let rho: f64 = 0.6;
        let year = 30;
        // Direct: Σ_{s=1..} ρ^{s-1} x_{year-s} down to the series start.
        let mut direct = 0.0;
        for s in 1..=30 {
            direct += rho.powi(s - 1) * f.at(year - s as i64);
        }
        // Tail below series start is clamped to x_0; account for it.
        let tail: f64 = (31..200).map(|s| rho.powi(s - 1) * f.at(0)).sum();
        let got = f.lagged(year, rho);
        assert!((got - direct).abs() < tail + 1e-9, "{got} vs {direct}");
    }

    #[test]
    fn lagged_series_matches_pointwise() {
        let f = ForcingSeries::historical_like(1980, 2000, 5);
        let rho = 0.8;
        let series = f.lagged_series(1985, 1995, rho);
        assert_eq!(series.len(), 11);
        for (k, v) in series.iter().enumerate() {
            let y = 1985 + k as i64;
            assert!((v - f.lagged(y, rho)).abs() < 1e-12, "year {y}");
        }
    }

    #[test]
    fn rho_zero_lag_is_previous_year() {
        let f = ForcingSeries::new(0, vec![5.0, 7.0, 11.0, 13.0]);
        assert_eq!(f.lagged(3, 0.0), 11.0);
        assert_eq!(f.lagged(1, 0.0), 5.0);
    }
}
