//! # exaclim-stats
//!
//! The statistical model of the climate emulator (paper §III.A):
//!
//! * [`forcing`] — radiative-forcing trajectories `x_t` (annual scale),
//! * [`trend`] — the deterministic mean model of eq. (2): intercept,
//!   current and exponentially lagged forcing response, and `K` harmonic
//!   pairs capturing seasonal/diurnal cycles; fitted per location by OLS
//!   with a profile grid search over the lag-decay `ρ`,
//! * [`var`] — the VAR(P) temporal model on spherical-harmonic coefficient
//!   vectors `f_t ∈ R^{L²}` with diagonal `Φ_p`,
//! * [`covariance`] — the empirical innovation covariance `Û` of eq. (9)
//!   with the paper's positive-definite diagonal perturbation,
//! * [`emulate`] — sampling: `ξ_t = V η_t`, VAR forward recursion, ready
//!   for the inverse SHT.

pub mod covariance;
pub mod emulate;
pub mod forcing;
pub mod trend;
pub mod tukey;
pub mod var;

pub use covariance::{empirical_covariance, ensure_spd};
pub use emulate::CoefficientSampler;
pub use forcing::ForcingSeries;
pub use trend::{TrendFit, TrendModel};
pub use tukey::{fit_tukey_gh, TukeyGH};
pub use var::{fit_diagonal_var, fit_diagonal_var_multi, DiagonalVar};
