//! Tukey g-and-h marginal transforms.
//!
//! Reference \[21\] of the paper (Jeong et al. 2019) builds a *wind* emulator
//! from Tukey g-and-h autoregressive processes: a Gaussian core `z` is
//! warped to `τ_{g,h}(z) = g⁻¹(e^{gz} − 1)·e^{hz²/2}` to capture skewness
//! (`g`) and heavy tails (`h ≥ 0`). Supporting this transform makes the
//! emulator multi-variable-ready (§VI: "robust and multi-variate
//! emulators"): fit `g, h` on the standardized residuals, de-warp to a
//! Gaussian core, run the usual spectral pipeline, re-warp on emulation.

use serde::{Deserialize, Serialize};

/// A Tukey g-and-h transformation with location/scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TukeyGH {
    /// Location ξ.
    pub xi: f64,
    /// Scale ω > 0.
    pub omega: f64,
    /// Skewness parameter `g` (0 ⇒ symmetric).
    pub g: f64,
    /// Tail-weight parameter `h ≥ 0` (0 ⇒ Gaussian tails).
    pub h: f64,
}

impl TukeyGH {
    /// The identity transform (standard Gaussian marginal).
    pub fn gaussian() -> Self {
        Self {
            xi: 0.0,
            omega: 1.0,
            g: 0.0,
            h: 0.0,
        }
    }

    /// Forward warp: Gaussian core `z` → g-and-h variate.
    pub fn forward(&self, z: f64) -> f64 {
        assert!(self.h >= 0.0, "h must be non-negative");
        let core = if self.g.abs() < 1e-12 {
            z
        } else {
            ((self.g * z).exp() - 1.0) / self.g
        };
        self.xi + self.omega * core * (self.h * z * z / 2.0).exp()
    }

    /// Inverse warp by safeguarded Newton iteration (the transform is
    /// strictly increasing for `h ≥ 0`, `|g| < ∞`).
    pub fn inverse(&self, y: f64) -> f64 {
        let target = y;
        // Bracket the root.
        let mut lo = -40.0f64;
        let mut hi = 40.0f64;
        let mut z = 0.0f64;
        for _ in 0..200 {
            let f = self.forward(z) - target;
            if f.abs() < 1e-13 * (1.0 + target.abs()) {
                return z;
            }
            if f > 0.0 {
                hi = z;
            } else {
                lo = z;
            }
            // Newton step with bisection fallback.
            let dz = 1e-6;
            let deriv = (self.forward(z + dz) - self.forward(z - dz)) / (2.0 * dz);
            let newton = z - f / deriv;
            z = if deriv > 0.0 && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
        }
        z
    }

    /// Warp a slice in place.
    pub fn forward_slice(&self, zs: &mut [f64]) {
        for z in zs.iter_mut() {
            *z = self.forward(*z);
        }
    }

    /// De-warp a slice in place.
    pub fn inverse_slice(&self, ys: &mut [f64]) {
        for y in ys.iter_mut() {
            *y = self.inverse(*y);
        }
    }
}

/// Fit `(ξ, ω, g, h)` by quantile matching (Hoaglin's letter-value method):
/// `g` from the median-relative asymmetry of the p/1−p quantile pair,
/// `h` from the spread growth across two tail depths, then location/scale.
pub fn fit_tukey_gh(samples: &[f64]) -> TukeyGH {
    assert!(
        samples.len() >= 32,
        "need a reasonable sample for quantile fitting"
    );
    let q = |p: f64| exaclim_mathkit::stats::quantile(samples, p);
    let median = q(0.5);
    let zp = |p: f64| inverse_normal_cdf(p);
    // g from the 0.9 quantile pair.
    let (p1, p2) = (0.90, 0.99);
    let g_at = |p: f64| {
        let zq = zp(p);
        let upper = q(p) - median;
        let lower = median - q(1.0 - p);
        if upper <= 0.0 || lower <= 0.0 {
            return 0.0;
        }
        (1.0 / zq) * (upper / lower).ln()
    };
    let g = 0.5 * (g_at(p1) + g_at(p2));
    // h from spread growth between the two depths (for g-adjusted spread
    // s(p) = ω·(e^{gz}−e^{−gz})/g·e^{hz²/2}).
    let spread = |p: f64| q(p) - q(1.0 - p);
    let core = |p: f64| {
        let z = zp(p);
        if g.abs() < 1e-9 {
            2.0 * z
        } else {
            ((g * z).exp() - (-g * z).exp()) / g
        }
    };
    let (s1, s2) = (spread(p1), spread(p2));
    let (c1, c2) = (core(p1), core(p2));
    let (z1, z2) = (zp(p1), zp(p2));
    let h = if s1 > 0.0 && s2 > 0.0 && c1 > 0.0 && c2 > 0.0 {
        (((s2 / c2) / (s1 / c1)).ln() / ((z2 * z2 - z1 * z1) / 2.0)).max(0.0)
    } else {
        0.0
    };
    let omega = if c1 > 0.0 {
        (s1 / c1) / (h * z1 * z1 / 2.0).exp()
    } else {
        1.0
    };
    // ξ: forward(0) = ξ.
    TukeyGH {
        xi: median,
        omega: omega.max(1e-12),
        g,
        h,
    }
}

/// Acklam-style rational approximation of the standard normal quantile,
/// |relative error| < 1.2e-9 on (0, 1).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_mathkit::rng::StandardNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_when_g_h_zero() {
        let t = TukeyGH::gaussian();
        for z in [-3.0, -0.5, 0.0, 1.7] {
            assert!((t.forward(z) - z).abs() < 1e-14);
            assert!((t.inverse(z) - z).abs() < 1e-10);
        }
    }

    #[test]
    fn forward_is_strictly_increasing() {
        let t = TukeyGH {
            xi: 1.0,
            omega: 2.0,
            g: 0.4,
            h: 0.15,
        };
        let mut prev = f64::NEG_INFINITY;
        for k in 0..100 {
            let z = -4.0 + 0.08 * k as f64;
            let y = t.forward(z);
            assert!(y > prev, "monotonicity at z={z}");
            prev = y;
        }
    }

    #[test]
    fn inverse_inverts_forward() {
        let t = TukeyGH {
            xi: -2.0,
            omega: 0.7,
            g: -0.3,
            h: 0.1,
        };
        for k in 0..50 {
            let z = -3.0 + 0.12 * k as f64;
            let back = t.inverse(t.forward(z));
            assert!((back - z).abs() < 1e-8, "z={z}: {back}");
        }
    }

    #[test]
    fn positive_g_skews_right() {
        let t = TukeyGH {
            xi: 0.0,
            omega: 1.0,
            g: 0.8,
            h: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut sn = StandardNormal::new();
        let ys: Vec<f64> = (0..40_000)
            .map(|_| t.forward(sn.sample(&mut rng)))
            .collect();
        let mean = exaclim_mathkit::stats::mean(&ys);
        let med = exaclim_mathkit::stats::quantile(&ys, 0.5);
        assert!(mean > med + 0.05, "right skew: mean {mean} vs median {med}");
    }

    #[test]
    fn positive_h_fattens_tails() {
        let heavy = TukeyGH {
            xi: 0.0,
            omega: 1.0,
            g: 0.0,
            h: 0.25,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut sn = StandardNormal::new();
        let (mut n_heavy, mut n_gauss) = (0usize, 0usize);
        for _ in 0..100_000 {
            let z = sn.sample(&mut rng);
            if heavy.forward(z).abs() > 3.0 {
                n_heavy += 1;
            }
            if z.abs() > 3.0 {
                n_gauss += 1;
            }
        }
        assert!(n_heavy > 2 * n_gauss, "heavy tails: {n_heavy} vs {n_gauss}");
    }

    #[test]
    fn fit_recovers_parameters_from_big_sample() {
        let truth = TukeyGH {
            xi: 3.0,
            omega: 1.5,
            g: 0.35,
            h: 0.08,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mut sn = StandardNormal::new();
        let ys: Vec<f64> = (0..200_000)
            .map(|_| truth.forward(sn.sample(&mut rng)))
            .collect();
        let fit = fit_tukey_gh(&ys);
        assert!((fit.xi - truth.xi).abs() < 0.05, "xi {}", fit.xi);
        assert!(
            (fit.omega - truth.omega).abs() < 0.15,
            "omega {}",
            fit.omega
        );
        assert!((fit.g - truth.g).abs() < 0.08, "g {}", fit.g);
        assert!((fit.h - truth.h).abs() < 0.06, "h {}", fit.h);
    }

    #[test]
    fn fit_of_gaussian_sample_is_near_identity_shape() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut sn = StandardNormal::new();
        let ys: Vec<f64> = (0..100_000).map(|_| sn.sample(&mut rng)).collect();
        let fit = fit_tukey_gh(&ys);
        assert!(fit.g.abs() < 0.05, "g {}", fit.g);
        assert!(fit.h < 0.04, "h {}", fit.h);
        assert!((fit.omega - 1.0).abs() < 0.1);
        assert!(fit.xi.abs() < 0.02);
    }

    #[test]
    fn inverse_normal_cdf_matches_known_points() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.999) - 3.090232).abs() < 1e-5);
        // Symmetry.
        for p in [0.01, 0.2, 0.4] {
            assert!((inverse_normal_cdf(p) + inverse_normal_cdf(1.0 - p)).abs() < 1e-9);
        }
    }
}
