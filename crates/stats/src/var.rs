//! VAR(P) temporal model on spherical-harmonic coefficient vectors.
//!
//! `f_t = Σ_{p=1..P} Φ_p f_{t−p} + ξ_t` with each `Φ_p` **diagonal**
//! (paper §III.A.3, following \[23\]): coefficient channels evolve
//! independently in time, while their *innovations* `ξ_t` remain fully
//! cross-correlated through the covariance `U` estimated downstream.
//! Diagonality turns the fit into `L²` independent AR(P) least-squares
//! problems — embarrassingly parallel over channels.

use exaclim_linalg::dense::{ols_solve, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Fitted diagonal VAR(P): `phi[c][p]` is the lag-(p+1) coefficient of
/// channel `c`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiagonalVar {
    /// Model order `P`.
    pub order: usize,
    /// Per-channel AR coefficients, `dim × order`.
    pub phi: Vec<Vec<f64>>,
}

impl DiagonalVar {
    /// Number of channels (`L²` for the emulator).
    pub fn dim(&self) -> usize {
        self.phi.len()
    }

    /// One-step prediction `Σ_p Φ_p f_{t−p}` from `history`, where
    /// `history[0]` is `f_{t−1}`, `history[1]` is `f_{t−2}`, …
    pub fn predict(&self, history: &[&[f64]]) -> Vec<f64> {
        assert!(history.len() >= self.order, "need {} lags", self.order);
        let dim = self.dim();
        let mut out = vec![0.0; dim];
        for p in 0..self.order {
            let lagged = history[p];
            assert_eq!(lagged.len(), dim);
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.phi[c][p] * lagged[c];
            }
        }
        out
    }

    /// Innovations `ξ_t = f_t − Σ_p Φ_p f_{t−p}` for `t = P..T`, time-major
    /// output of shape `(T−P) × dim`.
    pub fn innovations(&self, series: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = self.order;
        (p..series.len())
            .map(|t| {
                let hist: Vec<&[f64]> = (1..=p).map(|k| series[t - k].as_slice()).collect();
                let pred = self.predict(&hist);
                series[t].iter().zip(&pred).map(|(f, m)| f - m).collect()
            })
            .collect()
    }

    /// Largest absolute AR coefficient — a cheap stationarity proxy used by
    /// validation (`< 1` for each channel under AR(1)).
    pub fn max_abs_coefficient(&self) -> f64 {
        self.phi
            .iter()
            .flat_map(|row| row.iter().map(|c| c.abs()))
            .fold(0.0, f64::max)
    }
}

/// Fit a diagonal VAR(P) jointly over an ensemble of realizations: the
/// per-channel regressions stack the rows of every member (the paper's
/// `Φ_p` are shared across ensembles, like `m_t` and `σ`).
pub fn fit_diagonal_var_multi(members: &[&[Vec<f64>]], order: usize) -> DiagonalVar {
    assert!(!members.is_empty(), "need at least one ensemble member");
    assert!(order >= 1, "order must be positive");
    let dim = members[0][0].len();
    for m in members {
        assert!(m.len() > order + 1, "each member needs more than P+1 steps");
        assert!(m.iter().all(|f| f.len() == dim), "ragged series");
    }
    let rows: usize = members.iter().map(|m| m.len() - order).sum();
    let phi: Vec<Vec<f64>> = (0..dim)
        .into_par_iter()
        .map(|c| {
            let mut x = Vec::with_capacity(rows * order);
            let mut y = Vec::with_capacity(rows);
            for member in members {
                for t in order..member.len() {
                    for p in 1..=order {
                        x.push(member[t - p][c]);
                    }
                    y.push(member[t][c]);
                }
            }
            let design = Matrix::from_vec(rows, order, x);
            ols_solve(&design, &y)
        })
        .collect();
    DiagonalVar { order, phi }
}

/// Fit a diagonal VAR(P) to `series[t][c]` (`t = 0..T`), by per-channel OLS.
pub fn fit_diagonal_var(series: &[Vec<f64>], order: usize) -> DiagonalVar {
    let t_max = series.len();
    assert!(order >= 1, "order must be positive");
    assert!(t_max > order + 1, "need more than P+1 time steps");
    let dim = series[0].len();
    assert!(series.iter().all(|f| f.len() == dim), "ragged series");
    let rows = t_max - order;
    let phi: Vec<Vec<f64>> = (0..dim)
        .into_par_iter()
        .map(|c| {
            let mut x = Vec::with_capacity(rows * order);
            let mut y = Vec::with_capacity(rows);
            for t in order..t_max {
                for p in 1..=order {
                    x.push(series[t - p][c]);
                }
                y.push(series[t][c]);
            }
            let design = Matrix::from_vec(rows, order, x);
            ols_solve(&design, &y)
        })
        .collect();
    DiagonalVar { order, phi }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn simulate_ar(phi: &[Vec<f64>], t_max: usize, seed: u64) -> Vec<Vec<f64>> {
        let dim = phi.len();
        let order = phi[0].len();
        let mut s = seed;
        let mut series: Vec<Vec<f64>> = vec![vec![0.0; dim]; t_max];
        for t in order..t_max {
            for c in 0..dim {
                let mut v = lcg(&mut s);
                for p in 1..=order {
                    v += phi[c][p - 1] * series[t - p][c];
                }
                series[t][c] = v;
            }
        }
        series
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_sequential() {
        // The per-channel OLS regressions run through the pool-backed rayon
        // shim; each channel's math is independent, so the result must be
        // bit-for-bit the sequential answer regardless of thread count.
        let truth = vec![vec![0.6, -0.1], vec![0.4, 0.2], vec![-0.5, 0.1]];
        let series = simulate_ar(&truth, 4_000, 42);
        let order = 2;
        let fit = fit_diagonal_var(&series, order);
        let t_max = series.len();
        let rows = t_max - order;
        for (c, phi_c) in fit.phi.iter().enumerate() {
            let mut x = Vec::with_capacity(rows * order);
            let mut y = Vec::with_capacity(rows);
            for t in order..t_max {
                for p in 1..=order {
                    x.push(series[t - p][c]);
                }
                y.push(series[t][c]);
            }
            let design = Matrix::from_vec(rows, order, x);
            let seq = ols_solve(&design, &y);
            assert_eq!(phi_c.len(), seq.len());
            for (p, (a, b)) in phi_c.iter().zip(&seq).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "channel {c}, lag {p}");
            }
        }
        // Same for the multi-member estimator (single member ≡ stacked).
        let fit_multi = fit_diagonal_var_multi(&[series.as_slice()], order);
        for (a, b) in fit_multi.phi.iter().flatten().zip(fit.phi.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn recovers_ar1_coefficients() {
        let truth = vec![vec![0.9], vec![0.5], vec![-0.3], vec![0.0]];
        let series = simulate_ar(&truth, 20_000, 1);
        let fit = fit_diagonal_var(&series, 1);
        for (c, t) in truth.iter().enumerate() {
            assert!(
                (fit.phi[c][0] - t[0]).abs() < 0.03,
                "channel {c}: {} vs {}",
                fit.phi[c][0],
                t[0]
            );
        }
        assert!(fit.max_abs_coefficient() < 1.0);
    }

    #[test]
    fn recovers_ar3_coefficients() {
        // Stationary AR(3): roots well inside the unit circle.
        let truth = vec![vec![0.5, -0.2, 0.1], vec![0.3, 0.3, -0.1]];
        let series = simulate_ar(&truth, 50_000, 7);
        let fit = fit_diagonal_var(&series, 3);
        for c in 0..2 {
            for p in 0..3 {
                assert!(
                    (fit.phi[c][p] - truth[c][p]).abs() < 0.05,
                    "({c},{p}): {} vs {}",
                    fit.phi[c][p],
                    truth[c][p]
                );
            }
        }
    }

    #[test]
    fn innovations_are_white() {
        let truth = vec![vec![0.8]];
        let series = simulate_ar(&truth, 30_000, 3);
        let fit = fit_diagonal_var(&series, 1);
        let xi = fit.innovations(&series);
        assert_eq!(xi.len(), series.len() - 1);
        let v: Vec<f64> = xi.iter().map(|x| x[0]).collect();
        let r = exaclim_mathkit::stats::acf(&v, 3);
        assert!(r[1].abs() < 0.03, "lag-1 acf of innovations: {}", r[1]);
        assert!(r[2].abs() < 0.03);
    }

    #[test]
    fn innovations_of_true_model_recover_noise_variance() {
        let truth = vec![vec![0.7]];
        let series = simulate_ar(&truth, 20_000, 11);
        let model = DiagonalVar {
            order: 1,
            phi: truth,
        };
        let xi = model.innovations(&series);
        let v: Vec<f64> = xi.iter().map(|x| x[0]).collect();
        let var = exaclim_mathkit::stats::variance(&v);
        // Uniform(-0.5, 0.5) noise has variance 1/12.
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var={var}");
    }

    #[test]
    fn predict_uses_correct_lag_order() {
        let model = DiagonalVar {
            order: 2,
            phi: vec![vec![1.0, -0.5]],
        };
        // f_{t-1} = [2], f_{t-2} = [4] → prediction 1·2 − 0.5·4 = 0.
        let h1 = vec![2.0];
        let h2 = vec![4.0];
        let pred = model.predict(&[&h1, &h2]);
        assert_eq!(pred, vec![0.0]);
    }

    #[test]
    fn ensemble_fit_matches_single_member_in_the_limit() {
        let truth = vec![vec![0.7], vec![-0.4]];
        let a = simulate_ar(&truth, 10_000, 1);
        let single = fit_diagonal_var(&a, 1);
        let multi = fit_diagonal_var_multi(&[a.as_slice()], 1);
        for c in 0..2 {
            assert!((single.phi[c][0] - multi.phi[c][0]).abs() < 1e-12);
        }
    }

    #[test]
    fn ensemble_fit_pools_information() {
        // Three short members jointly estimate φ better than any one alone.
        let truth = vec![vec![0.85]];
        let members: Vec<Vec<Vec<f64>>> =
            (0..3).map(|r| simulate_ar(&truth, 600, 10 + r)).collect();
        let refs: Vec<&[Vec<f64>]> = members.iter().map(|m| m.as_slice()).collect();
        let pooled = fit_diagonal_var_multi(&refs, 1);
        assert!(
            (pooled.phi[0][0] - 0.85).abs() < 0.05,
            "pooled {}",
            pooled.phi[0][0]
        );
        // Innovations from every member are whitened by the shared model.
        for m in &members {
            let xi = pooled.innovations(m);
            let v: Vec<f64> = xi.iter().map(|x| x[0]).collect();
            let r = exaclim_mathkit::stats::acf(&v, 1);
            assert!(r[1].abs() < 0.1, "member innovations acf {}", r[1]);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_input() {
        let series = vec![vec![0.0, 1.0], vec![0.0], vec![0.0, 1.0], vec![1.0, 0.0]];
        let _ = fit_diagonal_var(&series, 1);
    }
}
