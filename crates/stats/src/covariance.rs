//! Empirical innovation covariance (eq. 9) and its SPD repair.

use exaclim_linalg::dense::Matrix;

/// Empirical covariance of innovation samples:
/// `Û = 1/(R(T−P)) Σ_r Σ_t ξ_t^{(r)} ξ_t^{(r)ᵀ}` — eq. (9). `samples`
/// holds all `R(T−P)` innovation vectors from every ensemble member.
pub fn empirical_covariance(samples: &[Vec<f64>]) -> Matrix {
    assert!(!samples.is_empty(), "need at least one innovation sample");
    let dim = samples[0].len();
    assert!(samples.iter().all(|s| s.len() == dim), "ragged samples");
    let mut u = Matrix::zeros(dim, dim);
    let data = u.as_mut_slice();
    for s in samples {
        for i in 0..dim {
            let si = s[i];
            if si == 0.0 {
                continue;
            }
            let row = &mut data[i * dim..(i + 1) * dim];
            for (j, r) in row.iter_mut().enumerate() {
                *r += si * s[j];
            }
        }
    }
    let scale = 1.0 / samples.len() as f64;
    for v in u.as_mut_slice() {
        *v *= scale;
    }
    u
}

/// Ensure `u` is positive definite by adding the paper's "minor perturbation
/// along the diagonal" when a Cholesky probe fails (needed whenever
/// `R(T−P) < L²` makes `Û` rank-deficient). Returns the jitter used.
pub fn ensure_spd(u: &mut Matrix) -> f64 {
    let n = u.rows();
    let trace: f64 = (0..n).map(|i| u.get(i, i)).sum();
    let base = (trace / n as f64).max(f64::MIN_POSITIVE);
    let mut jitter = 0.0f64;
    let mut step = base * 1e-10;
    for _ in 0..40 {
        if u.cholesky_lower().is_ok() {
            return jitter;
        }
        u.add_diagonal(step);
        jitter += step;
        step *= 10.0;
    }
    panic!("could not repair covariance to SPD after 40 attempts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_mathkit::rng::{MultivariateNormal, StandardNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_known_covariance() {
        // Σ = V Vᵀ with V = [[1,0],[0.8,0.6]] → Σ = [[1,0.8],[0.8,1.0]].
        let factor = vec![1.0, 0.0, 0.8, 0.6];
        let mut mvn = MultivariateNormal::from_lower_factor(vec![0.0, 0.0], &factor, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<Vec<f64>> = (0..100_000).map(|_| mvn.sample(&mut rng)).collect();
        let u = empirical_covariance(&samples);
        assert!((u.get(0, 0) - 1.0).abs() < 0.02);
        assert!((u.get(1, 1) - 1.0).abs() < 0.02);
        assert!((u.get(0, 1) - 0.8).abs() < 0.02);
        assert_eq!(u.get(0, 1), u.get(1, 0));
    }

    #[test]
    fn rank_deficient_needs_jitter() {
        // dim 4 from only 2 samples → rank ≤ 2 → Cholesky must fail, repair
        // must succeed with a tiny jitter.
        let mut rng = StdRng::seed_from_u64(9);
        let mut sn = StandardNormal::new();
        let samples: Vec<Vec<f64>> = (0..2).map(|_| sn.sample_vec(&mut rng, 4)).collect();
        let mut u = empirical_covariance(&samples);
        assert!(
            u.cholesky_lower().is_err(),
            "rank-deficient must not factor"
        );
        let jitter = ensure_spd(&mut u);
        assert!(jitter > 0.0);
        assert!(u.cholesky_lower().is_ok());
        // Jitter should be small relative to the diagonal scale.
        let diag_mean: f64 = (0..4).map(|i| u.get(i, i)).sum::<f64>() / 4.0;
        assert!(
            jitter < 0.01 * diag_mean,
            "jitter {jitter} vs diag {diag_mean}"
        );
    }

    #[test]
    fn full_rank_needs_no_jitter() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sn = StandardNormal::new();
        let samples: Vec<Vec<f64>> = (0..200).map(|_| sn.sample_vec(&mut rng, 4)).collect();
        let mut u = empirical_covariance(&samples);
        let jitter = ensure_spd(&mut u);
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn covariance_is_symmetric_psd_by_construction() {
        let samples = vec![
            vec![1.0, 2.0, -1.0],
            vec![0.5, -0.5, 2.0],
            vec![3.0, 0.0, 1.0],
        ];
        let u = empirical_covariance(&samples);
        for i in 0..3 {
            for j in 0..3 {
                assert!((u.get(i, j) - u.get(j, i)).abs() < 1e-12);
            }
            assert!(u.get(i, i) >= 0.0);
        }
    }
}
