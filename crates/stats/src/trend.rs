//! The deterministic mean-trend model of eq. (2).
//!
//! Per spatial location:
//! `m_t = β₀ + β₁ x_{⌈t/τ⌉} + β₂ (1−ρ) Σ_{s≥1} ρ^{s−1} x_{⌈t/τ⌉−s}`
//! `     + Σ_{k=1..K} a_k cos(2πtk/τ) + b_k sin(2πtk/τ)`,
//! plus the scale `σ` of the remaining stochastic component. Parameters are
//! estimated by per-location OLS (the 1-D MLE of the paper, O(T) per
//! location) with a profile grid search over `ρ ∈ [0,1)`; locations are
//! independent, so the grid fit parallelizes with rayon.

use crate::forcing::ForcingSeries;
use exaclim_linalg::dense::{ols_solve, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the trend model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendConfig {
    /// Number of harmonic pairs `K` (the paper uses 5).
    pub k_harmonics: usize,
    /// Steps per period `τ`: 12 monthly, 365 daily, 8760 hourly.
    pub tau: usize,
    /// Candidate lag-decay values for the profile search.
    pub rho_grid: Vec<f64>,
    /// Calendar year of time step `t = 1`.
    pub start_year: i64,
}

impl TrendConfig {
    /// A daily-resolution configuration matching the paper's choices
    /// (`K = 5`, `τ = 365`).
    pub fn daily(start_year: i64) -> Self {
        Self {
            k_harmonics: 5,
            tau: 365,
            rho_grid: vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9],
            start_year,
        }
    }

    /// Hourly configuration (`τ = 8760`).
    pub fn hourly(start_year: i64) -> Self {
        Self {
            tau: 8760,
            ..Self::daily(start_year)
        }
    }

    /// Calendar year of 1-based step `t` (the `⌈t/τ⌉` mapping).
    pub fn year_of(&self, t: usize) -> i64 {
        self.start_year + ((t - 1) / self.tau) as i64
    }

    /// Number of regression columns: intercept + current + lagged forcing +
    /// 2K harmonics.
    pub fn ncols(&self) -> usize {
        3 + 2 * self.k_harmonics
    }
}

/// Fitted trend parameters of one location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendModel {
    /// Intercept `β₀`.
    pub beta0: f64,
    /// Current-forcing slope `β₁`.
    pub beta1: f64,
    /// Lagged-forcing slope `β₂`.
    pub beta2: f64,
    /// Lag decay `ρ` selected by the profile search.
    pub rho: f64,
    /// Harmonic amplitudes `(a_k, b_k)`, `k = 1..K`.
    pub harmonics: Vec<(f64, f64)>,
    /// Residual standard deviation `σ`.
    pub sigma: f64,
}

impl TrendModel {
    /// Evaluate the mean `m_t` for `t = 1..=t_max`.
    pub fn mean_series(
        &self,
        cfg: &TrendConfig,
        forcing: &ForcingSeries,
        t_max: usize,
    ) -> Vec<f64> {
        let years: Vec<i64> = (1..=t_max).map(|t| cfg.year_of(t)).collect();
        let lag = forcing.lagged_series(years[0], years[t_max - 1], self.rho);
        let y0 = years[0];
        (1..=t_max)
            .map(|t| {
                let y = cfg.year_of(t);
                let xc = forcing.at(y);
                let xl = (1.0 - self.rho) * lag[(y - y0) as usize];
                let mut m = self.beta0 + self.beta1 * xc + self.beta2 * xl;
                for (k, (a, b)) in self.harmonics.iter().enumerate() {
                    let w =
                        2.0 * std::f64::consts::PI * (t as f64) * (k as f64 + 1.0) / cfg.tau as f64;
                    m += a * w.cos() + b * w.sin();
                }
                m
            })
            .collect()
    }
}

/// Build the `T × ncols` design matrix for one candidate `ρ`.
fn design_matrix(cfg: &TrendConfig, forcing: &ForcingSeries, t_max: usize, rho: f64) -> Matrix {
    let y_first = cfg.year_of(1);
    let y_last = cfg.year_of(t_max);
    let lag = forcing.lagged_series(y_first, y_last, rho);
    let ncols = cfg.ncols();
    let mut x = Vec::with_capacity(t_max * ncols);
    for t in 1..=t_max {
        let y = cfg.year_of(t);
        x.push(1.0);
        x.push(forcing.at(y));
        x.push((1.0 - rho) * lag[(y - y_first) as usize]);
        for k in 1..=cfg.k_harmonics {
            let w = 2.0 * std::f64::consts::PI * (t as f64) * k as f64 / cfg.tau as f64;
            x.push(w.cos());
            x.push(w.sin());
        }
    }
    Matrix::from_vec(t_max, ncols, x)
}

fn sse(x: &Matrix, beta: &[f64], y: &[f64]) -> f64 {
    let fit = x.matvec(beta);
    fit.iter().zip(y).map(|(f, v)| (f - v) * (f - v)).sum()
}

/// Fit one location's series `y[t-1]`, `t = 1..=T`.
pub fn fit_location(y: &[f64], cfg: &TrendConfig, forcing: &ForcingSeries) -> TrendModel {
    let t_max = y.len();
    assert!(t_max > cfg.ncols(), "need more time steps than parameters");
    let mut best: Option<(f64, f64, Vec<f64>)> = None; // (sse, rho, beta)
    for &rho in &cfg.rho_grid {
        let x = design_matrix(cfg, forcing, t_max, rho);
        let beta = ols_solve(&x, y);
        let err = sse(&x, &beta, y);
        if best.as_ref().is_none_or(|(b, _, _)| err < *b) {
            best = Some((err, rho, beta));
        }
    }
    let (err, rho, beta) = best.expect("non-empty rho grid");
    let harmonics = (0..cfg.k_harmonics)
        .map(|k| (beta[3 + 2 * k], beta[4 + 2 * k]))
        .collect();
    TrendModel {
        beta0: beta[0],
        beta1: beta[1],
        beta2: beta[2],
        rho,
        harmonics,
        sigma: (err / t_max as f64).sqrt().max(1e-12),
    }
}

/// Trend models for every grid point plus the standardized residuals.
#[derive(Debug, Clone)]
pub struct TrendFit {
    /// One model per location.
    pub models: Vec<TrendModel>,
    /// Standardized stochastic component `Z_t = (y_t − m_t)/σ`, time-major
    /// (`t · npoints + p`).
    pub residuals: Vec<f64>,
}

/// Fit the whole grid. `data` is time-major: `data[t·npoints + p]` for
/// `t = 0..t_max`, location `p`. Locations are fitted in parallel.
pub fn fit_grid(
    data: &[f64],
    t_max: usize,
    npoints: usize,
    cfg: &TrendConfig,
    forcing: &ForcingSeries,
) -> TrendFit {
    assert_eq!(data.len(), t_max * npoints);
    let models: Vec<TrendModel> = (0..npoints)
        .into_par_iter()
        .map(|p| {
            let series: Vec<f64> = (0..t_max).map(|t| data[t * npoints + p]).collect();
            fit_location(&series, cfg, forcing)
        })
        .collect();
    let mut residuals = vec![0.0f64; t_max * npoints];
    residuals
        .par_chunks_mut(npoints)
        .enumerate()
        .for_each(|(t, row)| {
            for (p, r) in row.iter_mut().enumerate() {
                *r = data[t * npoints + p];
            }
        });
    // Subtract means column-wise (per location, over its own ρ lag series).
    let means: Vec<Vec<f64>> = models
        .par_iter()
        .map(|m| m.mean_series(cfg, forcing, t_max))
        .collect();
    residuals
        .par_chunks_mut(npoints)
        .enumerate()
        .for_each(|(t, row)| {
            for (p, r) in row.iter_mut().enumerate() {
                *r = (*r - means[p][t]) / models[p].sigma;
            }
        });
    TrendFit { models, residuals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    /// Sequential reference for [`fit_grid`]: the same per-location math
    /// driven by plain loops. The pool-backed rayon shim must reproduce
    /// this bit-for-bit, whatever the thread count.
    fn fit_grid_sequential(
        data: &[f64],
        t_max: usize,
        npoints: usize,
        cfg: &TrendConfig,
        forcing: &ForcingSeries,
    ) -> TrendFit {
        let models: Vec<TrendModel> = (0..npoints)
            .map(|p| {
                let series: Vec<f64> = (0..t_max).map(|t| data[t * npoints + p]).collect();
                fit_location(&series, cfg, forcing)
            })
            .collect();
        let means: Vec<Vec<f64>> = models
            .iter()
            .map(|m| m.mean_series(cfg, forcing, t_max))
            .collect();
        let mut residuals = vec![0.0f64; t_max * npoints];
        for t in 0..t_max {
            for p in 0..npoints {
                residuals[t * npoints + p] =
                    (data[t * npoints + p] - means[p][t]) / models[p].sigma;
            }
        }
        TrendFit { models, residuals }
    }

    #[test]
    fn parallel_fit_grid_is_bit_identical_to_sequential() {
        let cfg = cfg();
        let forcing = ForcingSeries::historical_like(1950, 1970, 30);
        let (t_max, npoints) = (8 * cfg.tau, 7);
        let mut data = vec![0.0f64; t_max * npoints];
        let mut state = 0x5eed_u64;
        for (i, v) in data.iter_mut().enumerate() {
            let p = i % npoints;
            let t = i / npoints;
            let seasonal =
                (2.0 * std::f64::consts::PI * t as f64 / cfg.tau as f64 + p as f64).sin();
            *v = 280.0 + 3.0 * seasonal + 0.5 * lcg(&mut state);
        }
        let par = fit_grid(&data, t_max, npoints, &cfg, &forcing);
        let seq = fit_grid_sequential(&data, t_max, npoints, &cfg, &forcing);
        assert_eq!(par.models.len(), seq.models.len());
        for (p, (a, b)) in par.models.iter().zip(&seq.models).enumerate() {
            assert_eq!(a.beta0.to_bits(), b.beta0.to_bits(), "beta0 at {p}");
            assert_eq!(a.beta1.to_bits(), b.beta1.to_bits(), "beta1 at {p}");
            assert_eq!(a.beta2.to_bits(), b.beta2.to_bits(), "beta2 at {p}");
            assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "rho at {p}");
            assert_eq!(a.sigma.to_bits(), b.sigma.to_bits(), "sigma at {p}");
            assert_eq!(a.harmonics, b.harmonics, "harmonics at {p}");
        }
        for (i, (a, b)) in par.residuals.iter().zip(&seq.residuals).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "residual at {i}");
        }
    }

    fn cfg() -> TrendConfig {
        TrendConfig {
            k_harmonics: 2,
            tau: 12,
            rho_grid: vec![0.0, 0.3, 0.6, 0.9],
            start_year: 1950,
        }
    }

    fn synth(
        cfg: &TrendConfig,
        forcing: &ForcingSeries,
        truth: &TrendModel,
        t_max: usize,
    ) -> Vec<f64> {
        truth.mean_series(cfg, forcing, t_max)
    }

    #[test]
    fn recovers_noise_free_parameters() {
        let cfg = cfg();
        // Wiggly forcing decorrelates the current and lagged regressors;
        // a smooth ramp would leave (β₁, β₂) only jointly identified.
        let forcing = ForcingSeries::new(
            1920,
            (0..120)
                .map(|i| 2.0 + (0.7 * i as f64).sin() + 0.03 * i as f64)
                .collect(),
        );
        let truth = TrendModel {
            beta0: 285.0,
            beta1: 1.4,
            beta2: 0.8,
            rho: 0.6,
            harmonics: vec![(3.0, -1.0), (0.5, 0.25)],
            sigma: 0.0,
        };
        let t_max = 12 * 60;
        let y = synth(&cfg, &forcing, &truth, t_max);
        let fit = fit_location(&y, &cfg, &forcing);
        assert_eq!(fit.rho, 0.6, "profile search must select the true ρ");
        assert!((fit.beta0 - 285.0).abs() < 1e-4, "beta0={}", fit.beta0);
        assert!((fit.beta1 - 1.4).abs() < 1e-4, "beta1={}", fit.beta1);
        assert!((fit.beta2 - 0.8).abs() < 1e-4, "beta2={}", fit.beta2);
        assert!((fit.harmonics[0].0 - 3.0).abs() < 1e-6);
        assert!((fit.harmonics[0].1 + 1.0).abs() < 1e-6);
        assert!((fit.harmonics[1].0 - 0.5).abs() < 1e-6);
        assert!(fit.sigma < 1e-4);
        // Predictive recovery: fitted mean must reproduce the truth.
        let m = fit.mean_series(&cfg, &forcing, t_max);
        for (a, b) in m.iter().zip(&y) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn sigma_estimates_noise_level() {
        let cfg = cfg();
        let forcing = ForcingSeries::historical_like(1950, 2022, 20);
        let truth = TrendModel {
            beta0: 280.0,
            beta1: 1.0,
            beta2: 0.0,
            rho: 0.0,
            harmonics: vec![(2.0, 0.0), (0.0, 0.0)],
            sigma: 0.0,
        };
        let t_max = 12 * 50;
        let mut y = synth(&cfg, &forcing, &truth, t_max);
        // Add deterministic pseudo-noise of known std.
        let mut s = 12345u64;
        let noise_std = 0.7;
        for v in y.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u1 = ((s >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u2 = (s >> 11) as f64 / (1u64 << 53) as f64;
            *v += noise_std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        let fit = fit_location(&y, &cfg, &forcing);
        assert!((fit.sigma - noise_std).abs() < 0.05, "sigma={}", fit.sigma);
        assert!((fit.beta0 - 280.0).abs() < 2.0);
    }

    #[test]
    fn year_mapping_is_ceiling_of_t_over_tau() {
        let c = cfg();
        assert_eq!(c.year_of(1), 1950);
        assert_eq!(c.year_of(12), 1950);
        assert_eq!(c.year_of(13), 1951);
        assert_eq!(c.year_of(25), 1952);
    }

    #[test]
    fn grid_fit_standardizes_residuals() {
        let cfg = cfg();
        let forcing = ForcingSeries::historical_like(1950, 2010, 20);
        let t_max = 12 * 40;
        let npoints = 6;
        let mut data = vec![0.0f64; t_max * npoints];
        let mut s = 99u64;
        for p in 0..npoints {
            let truth = TrendModel {
                beta0: 270.0 + p as f64,
                beta1: 0.5 + 0.1 * p as f64,
                beta2: 0.0,
                rho: 0.0,
                harmonics: vec![(1.0, 0.5), (0.0, 0.0)],
                sigma: 0.0,
            };
            let m = truth.mean_series(&cfg, &forcing, t_max);
            for t in 0..t_max {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u1 = ((s >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u2 = (s >> 11) as f64 / (1u64 << 53) as f64;
                let noise = (0.3 + 0.1 * p as f64)
                    * (-2.0 * u1.ln()).sqrt()
                    * (2.0 * std::f64::consts::PI * u2).cos();
                data[t * npoints + p] = m[t] + noise;
            }
        }
        let fit = fit_grid(&data, t_max, npoints, &cfg, &forcing);
        assert_eq!(fit.models.len(), npoints);
        // Standardized residuals: mean ≈ 0, var ≈ 1 per location.
        for p in 0..npoints {
            let series: Vec<f64> = (0..t_max).map(|t| fit.residuals[t * npoints + p]).collect();
            let mean: f64 = series.iter().sum::<f64>() / t_max as f64;
            let var: f64 =
                series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / t_max as f64;
            assert!(mean.abs() < 0.05, "p={p} mean={mean}");
            assert!((var - 1.0).abs() < 0.1, "p={p} var={var}");
        }
    }
}
