//! Coefficient-path sampling (paper §III.B).
//!
//! Emulation draws `ξ_t = V η_t` with `η_t ~ N(0, I)` using the Cholesky
//! factor `V` of `Û`, then runs the VAR(P) recursion forward:
//! `f_t = Σ_p Φ_p f_{t−p} + ξ_t`. The resulting coefficient vectors are
//! handed to the inverse SHT by the caller (O(L²T) for the recursion, as
//! in the paper).

use crate::var::DiagonalVar;
use exaclim_mathkit::rng::StandardNormal;
use rand::Rng;

/// Sampler of coefficient paths given the fitted temporal model and the
/// innovation factor.
#[derive(Debug, Clone)]
pub struct CoefficientSampler {
    var: DiagonalVar,
    /// Dense row-major lower-triangular `V` with `Û = V Vᵀ`.
    factor: Vec<f64>,
    dim: usize,
    /// Steps discarded before the returned path starts (VAR spin-up).
    pub burn_in: usize,
}

impl CoefficientSampler {
    /// Build from a fitted VAR and the dense `dim × dim` lower factor.
    pub fn new(var: DiagonalVar, factor: Vec<f64>, dim: usize) -> Self {
        assert_eq!(var.dim(), dim, "VAR dimension mismatch");
        assert_eq!(factor.len(), dim * dim, "factor must be dim²");
        Self {
            var,
            factor,
            dim,
            burn_in: 50,
        }
    }

    /// Channel count (`L²`).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draw one innovation `ξ = V η`.
    fn draw_innovation<R: Rng + ?Sized>(&self, sn: &mut StandardNormal, rng: &mut R) -> Vec<f64> {
        let eta = sn.sample_vec(rng, self.dim);
        let mut out = vec![0.0; self.dim];
        for i in 0..self.dim {
            let row = &self.factor[i * self.dim..i * self.dim + i + 1];
            let mut acc = 0.0;
            for (l, e) in row.iter().zip(&eta[..=i]) {
                acc += l * e;
            }
            out[i] = acc;
        }
        out
    }

    /// Sample a coefficient path of length `t_max` (after burn-in).
    pub fn sample_path<R: Rng + ?Sized>(&self, t_max: usize, rng: &mut R) -> Vec<Vec<f64>> {
        let p = self.var.order;
        let total = t_max + self.burn_in + p;
        let mut sn = StandardNormal::new();
        let mut series: Vec<Vec<f64>> = Vec::with_capacity(total);
        for _ in 0..p {
            series.push(vec![0.0; self.dim]);
        }
        for t in p..total {
            let hist: Vec<&[f64]> = (1..=p).map(|k| series[t - k].as_slice()).collect();
            let mut f = self.var.predict(&hist);
            let xi = self.draw_innovation(&mut sn, rng);
            for (v, x) in f.iter_mut().zip(&xi) {
                *v += x;
            }
            series.push(f);
        }
        series.split_off(total - t_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covariance::empirical_covariance;
    use crate::var::fit_diagonal_var;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(phi: Vec<Vec<f64>>, factor: Vec<f64>, dim: usize) -> CoefficientSampler {
        let order = phi[0].len();
        CoefficientSampler::new(DiagonalVar { order, phi }, factor, dim)
    }

    #[test]
    fn ar1_marginal_variance_matches_theory() {
        // f_t = φ f_{t−1} + ξ, Var(ξ) = s² → Var(f) = s²/(1−φ²).
        let phi = 0.8;
        let s = 0.5;
        let smp = sampler(vec![vec![phi]], vec![s], 1);
        let mut rng = StdRng::seed_from_u64(2);
        let path = smp.sample_path(60_000, &mut rng);
        let xs: Vec<f64> = path.iter().map(|f| f[0]).collect();
        let var = exaclim_mathkit::stats::variance(&xs);
        let expect = s * s / (1.0 - phi * phi);
        assert!((var - expect).abs() < 0.05 * expect, "{var} vs {expect}");
        // Lag-1 autocorrelation ≈ φ.
        let r = exaclim_mathkit::stats::acf(&xs, 1);
        assert!((r[1] - phi).abs() < 0.02, "acf {} vs {phi}", r[1]);
    }

    #[test]
    fn innovations_reproduce_cross_covariance() {
        // 2-channel AR(1) with correlated innovations.
        let factor = vec![1.0, 0.0, 0.6, 0.8]; // U = [[1,0.6],[0.6,1.0]]
        let smp = sampler(vec![vec![0.5], vec![0.3]], factor, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let path = smp.sample_path(50_000, &mut rng);
        // Refit the model from the sample: round-trip consistency.
        let fit = fit_diagonal_var(&path, 1);
        assert!((fit.phi[0][0] - 0.5).abs() < 0.03);
        assert!((fit.phi[1][0] - 0.3).abs() < 0.03);
        let xi = fit.innovations(&path);
        let u = empirical_covariance(&xi);
        assert!((u.get(0, 0) - 1.0).abs() < 0.05, "{}", u.get(0, 0));
        assert!((u.get(1, 1) - 1.0).abs() < 0.05);
        assert!((u.get(0, 1) - 0.6).abs() < 0.05, "{}", u.get(0, 1));
    }

    #[test]
    fn burn_in_removes_initialization_bias() {
        let smp = sampler(vec![vec![0.95]], vec![1.0], 1);
        let mut rng = StdRng::seed_from_u64(4);
        let path = smp.sample_path(4_000, &mut rng);
        // With burn-in the early part of the path must already be at the
        // stationary scale (Var ≈ 1/(1−0.95²) ≈ 10.26).
        let head: Vec<f64> = path[..500].iter().map(|f| f[0]).collect();
        let var = exaclim_mathkit::stats::variance(&head);
        assert!(var > 3.0, "head variance {var} suggests missing burn-in");
    }

    #[test]
    fn deterministic_under_seed() {
        let smp = sampler(vec![vec![0.5], vec![-0.2]], vec![1.0, 0.0, 0.0, 1.0], 2);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(smp.sample_path(100, &mut r1), smp.sample_path(100, &mut r2));
    }

    #[test]
    fn path_length_is_exact() {
        let smp = sampler(vec![vec![0.1]], vec![1.0], 1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(smp.sample_path(123, &mut rng).len(), 123);
    }
}
