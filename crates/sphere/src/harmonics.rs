//! Spherical-harmonic evaluation and the analytic sin-weighted integrals.

use crate::legendre::{idx, LegendreTable};
use exaclim_mathkit::Complex64;

/// Evaluate a single orthonormal spherical harmonic `Y_{ℓm}(θ, φ)` for
/// `m ≥ 0`; negative orders follow from
/// `Y_{ℓ,−m} = (−1)^m conj(Y_{ℓm})`.
///
/// This is an O(ℓ²) convenience for tests and spot evaluations — bulk code
/// paths use [`LegendreTable`] directly.
pub fn ylm(l: usize, m: i64, theta: f64, phi: f64) -> Complex64 {
    assert!(m.unsigned_abs() as usize <= l, "|m| must not exceed l");
    let table = LegendreTable::new(l);
    let lam = table.eval(theta);
    let ma = m.unsigned_abs() as usize;
    let base = lam[idx(l, ma)];
    let e = Complex64::cis(ma as f64 * phi);
    if m >= 0 {
        e * base
    } else {
        let v = (e * base).conj();
        if ma.is_multiple_of(2) {
            v
        } else {
            -v
        }
    }
}

/// The analytic integral of eq. (8):
/// `I(q) = ∫₀^π e^{iqθ} sinθ dθ = ± iπ/2` for `q = ±1`, `0` for other odd
/// `q`, and `2/(1−q²)` for even `q`.
pub fn integral_iq(q: i64) -> Complex64 {
    if q.rem_euclid(2) == 1 {
        if q.abs() == 1 {
            Complex64::new(0.0, q as f64 * std::f64::consts::PI / 2.0)
        } else {
            Complex64::ZERO
        }
    } else {
        Complex64::real(2.0 / (1.0 - (q * q) as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_mathkit::GaussLegendre;

    #[test]
    fn iq_matches_quadrature() {
        let rule = GaussLegendre::new(64);
        for q in -9i64..=9 {
            let re = rule.integrate_on(0.0, std::f64::consts::PI, |t| {
                (q as f64 * t).cos() * t.sin()
            });
            let im = rule.integrate_on(0.0, std::f64::consts::PI, |t| {
                (q as f64 * t).sin() * t.sin()
            });
            let analytic = integral_iq(q);
            assert!(
                (analytic.re - re).abs() < 1e-12,
                "q={q} re: {} vs {re}",
                analytic.re
            );
            assert!(
                (analytic.im - im).abs() < 1e-12,
                "q={q} im: {} vs {im}",
                analytic.im
            );
        }
    }

    #[test]
    fn iq_special_values() {
        assert_eq!(integral_iq(0).re, 2.0);
        assert!((integral_iq(1).im - std::f64::consts::PI / 2.0).abs() < 1e-15);
        assert!((integral_iq(-1).im + std::f64::consts::PI / 2.0).abs() < 1e-15);
        assert_eq!(integral_iq(3), Complex64::ZERO);
        assert!((integral_iq(2).re + 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn ylm_orthonormality_by_quadrature() {
        // ∫ Y_{ℓm} conj(Y_{ℓ'm'}) dΩ = δδ via GL × trapezoid-in-φ.
        let rule = GaussLegendre::new(16);
        let nphi = 32;
        let cases = [(0usize, 0i64), (1, 0), (1, 1), (2, 1), (3, -2), (4, 4)];
        for &(l1, m1) in &cases {
            for &(l2, m2) in &cases {
                let mut acc = Complex64::ZERO;
                for (x, w) in rule.nodes.iter().zip(&rule.weights) {
                    let theta = x.acos();
                    for j in 0..nphi {
                        let phi = 2.0 * std::f64::consts::PI * j as f64 / nphi as f64;
                        acc += ylm(l1, m1, theta, phi) * ylm(l2, m2, theta, phi).conj() * *w;
                    }
                }
                acc = acc * (2.0 * std::f64::consts::PI / nphi as f64);
                let expect = if (l1, m1) == (l2, m2) { 1.0 } else { 0.0 };
                assert!(
                    (acc.re - expect).abs() < 1e-10 && acc.im.abs() < 1e-10,
                    "({l1},{m1}) vs ({l2},{m2}): {acc:?}"
                );
            }
        }
    }

    #[test]
    fn negative_m_symmetry() {
        let (theta, phi) = (0.9, 2.1);
        for l in 1..=4usize {
            for m in 1..=l as i64 {
                let plus = ylm(l, m, theta, phi);
                let minus = ylm(l, -m, theta, phi);
                let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
                let expect = plus.conj() * sign;
                assert!((minus - expect).abs() < 1e-12, "l={l} m={m}");
            }
        }
    }

    #[test]
    fn y00_is_constant() {
        let v = ylm(0, 0, 1.2, 3.4);
        assert!((v.re - (1.0 / (4.0 * std::f64::consts::PI)).sqrt()).abs() < 1e-14);
        assert!(v.im.abs() < 1e-14);
    }
}
