//! # exaclim-sphere
//!
//! Spherical geometry and special-function machinery shared by the SHT and
//! the climate-data generator:
//!
//! * [`grid`] — the two latitude–longitude samplings used in the paper: the
//!   ERA5-style equiangular grid (includes both poles, `Nθ × Nϕ`) and the
//!   Gauss–Legendre grid (exact quadrature for band-limited fields),
//! * [`legendre`] — fully normalized associated Legendre functions
//!   `λ_ℓ^m` with Condon–Shortley phase, via stable three-term recursions,
//! * [`wigner`] — Wigner-d matrices at `β = π/2`, the precomputed tensor at
//!   the heart of the paper's FFT-based SHT (eqs. 6–7),
//! * [`harmonics`] — spherical-harmonic evaluation and the analytic
//!   `I(q) = ∫₀^π e^{iqθ} sinθ dθ` integrals (eq. 8).

pub mod grid;
pub mod harmonics;
pub mod legendre;
pub mod wigner;

pub use grid::{EquiangularGrid, GaussLegendreGrid, Grid};
pub use harmonics::{integral_iq, ylm};
pub use legendre::LegendreTable;
pub use wigner::WignerPiHalf;
