//! Fully normalized associated Legendre functions.
//!
//! `λ_ℓ^m(x)` is defined so that the spherical harmonics
//! `Y_{ℓm}(θ, φ) = λ_ℓ^m(cosθ) e^{imφ}` are orthonormal over the sphere:
//! `∫ Y_{ℓm} conj(Y_{ℓ'm'}) dΩ = δ_{ℓℓ'} δ_{mm'}`, equivalently
//! `∫_{-1}^{1} λ_ℓ^m λ_{ℓ'}^m dx = δ_{ℓℓ'} / 2π`.
//!
//! The Condon–Shortley phase `(−1)^m` is **included** in `λ`. All recursions
//! run upward in `ℓ`, the numerically stable direction; the diagonal seed is
//! accumulated multiplicatively with the `sinθ^m` factor folded in at every
//! step so no intermediate under/overflows below `ℓ ≈ 10⁵`.

/// Table of `λ_ℓ^m(x)` for all `0 ≤ m ≤ ℓ < L` at one abscissa, or an
/// evaluator reused across abscissae.
#[derive(Debug, Clone)]
pub struct LegendreTable {
    lmax: usize,
    /// `a_ℓ^m = sqrt((4ℓ²−1)/(ℓ²−m²))`, packed by [`idx`].
    a: Vec<f64>,
    /// `b_ℓ^m = sqrt(((ℓ−1)²−m²)/(4(ℓ−1)²−1))`, packed by [`idx`].
    b: Vec<f64>,
}

/// Packed index of `(ℓ, m)` with `0 ≤ m ≤ ℓ`: triangular row-major.
#[inline(always)]
pub fn idx(l: usize, m: usize) -> usize {
    debug_assert!(m <= l);
    l * (l + 1) / 2 + m
}

/// Number of `(ℓ, m)` pairs with `0 ≤ m ≤ ℓ < lmax + 1`… i.e. the packed
/// length for a table up to degree `lmax` inclusive.
#[inline]
pub fn packed_len(lmax: usize) -> usize {
    (lmax + 1) * (lmax + 2) / 2
}

impl LegendreTable {
    /// Precompute recursion coefficients for degrees `ℓ ≤ lmax`.
    pub fn new(lmax: usize) -> Self {
        let n = packed_len(lmax);
        let mut a = vec![0.0f64; n];
        let mut b = vec![0.0f64; n];
        for l in 2..=lmax {
            for m in 0..l.saturating_sub(1) {
                let lf = l as f64;
                let mf = m as f64;
                a[idx(l, m)] = ((4.0 * lf * lf - 1.0) / (lf * lf - mf * mf)).sqrt();
                b[idx(l, m)] = (((lf - 1.0) * (lf - 1.0) - mf * mf)
                    / (4.0 * (lf - 1.0) * (lf - 1.0) - 1.0))
                    .sqrt();
            }
        }
        Self { lmax, a, b }
    }

    /// Highest degree available.
    pub fn lmax(&self) -> usize {
        self.lmax
    }

    /// Evaluate all `λ_ℓ^m(cosθ)` into `out` (packed by [`idx`], length
    /// [`packed_len`]`(lmax)`), given `cosθ` and `sinθ ≥ 0`.
    pub fn eval_into(&self, cos_theta: f64, sin_theta: f64, out: &mut [f64]) {
        assert_eq!(out.len(), packed_len(self.lmax));
        let x = cos_theta;
        let s = sin_theta;
        // λ_0^0 = sqrt(1/4π)
        let mut diag = (1.0 / (4.0 * std::f64::consts::PI)).sqrt();
        out[idx(0, 0)] = diag;
        for m in 0..=self.lmax {
            if m > 0 {
                // λ_m^m = −sqrt((2m+1)/(2m)) sinθ λ_{m−1}^{m−1}
                let mf = m as f64;
                diag *= -((2.0 * mf + 1.0) / (2.0 * mf)).sqrt() * s;
                out[idx(m, m)] = diag;
            }
            if m < self.lmax {
                // λ_{m+1}^m = sqrt(2m+3) x λ_m^m
                out[idx(m + 1, m)] = (2.0 * m as f64 + 3.0).sqrt() * x * diag;
            }
            for l in m + 2..=self.lmax {
                out[idx(l, m)] = self.a[idx(l, m)]
                    * (x * out[idx(l - 1, m)] - self.b[idx(l, m)] * out[idx(l - 2, m)]);
            }
        }
    }

    /// Convenience allocating variant of [`LegendreTable::eval_into`].
    pub fn eval(&self, theta: f64) -> Vec<f64> {
        let mut out = vec![0.0; packed_len(self.lmax)];
        self.eval_into(theta.cos(), theta.sin(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaclim_mathkit::GaussLegendre;

    const FOUR_PI: f64 = 4.0 * std::f64::consts::PI;

    #[test]
    fn closed_forms_low_degree() {
        let t = LegendreTable::new(2);
        let theta = 0.7f64;
        let v = t.eval(theta);
        let (x, s) = (theta.cos(), theta.sin());
        // λ_0^0 = sqrt(1/4π)
        assert!((v[idx(0, 0)] - (1.0 / FOUR_PI).sqrt()).abs() < 1e-14);
        // λ_1^0 = sqrt(3/4π) x
        assert!((v[idx(1, 0)] - (3.0 / FOUR_PI).sqrt() * x).abs() < 1e-14);
        // λ_1^1 = −sqrt(3/8π) sinθ
        assert!((v[idx(1, 1)] + (3.0 / (2.0 * FOUR_PI)).sqrt() * s).abs() < 1e-14);
        // λ_2^0 = sqrt(5/4π) (3x²−1)/2
        assert!((v[idx(2, 0)] - (5.0 / FOUR_PI).sqrt() * 0.5 * (3.0 * x * x - 1.0)).abs() < 1e-14);
        // λ_2^1 = −sqrt(15/8π) x sinθ
        assert!((v[idx(2, 1)] + (15.0 / (2.0 * FOUR_PI)).sqrt() * x * s).abs() < 1e-14);
        // λ_2^2 = sqrt(15/32π) sin²θ
        assert!((v[idx(2, 2)] - (15.0 / (8.0 * FOUR_PI)).sqrt() * s * s).abs() < 1e-14);
    }

    #[test]
    fn orthonormality_under_gl_quadrature() {
        // ∫_{-1}^1 λ_ℓ^m λ_{ℓ'}^m dx = δ_{ℓℓ'} / 2π, integrated exactly by GL.
        let lmax = 24;
        let table = LegendreTable::new(lmax);
        let rule = GaussLegendre::new(lmax + 1);
        let evals: Vec<Vec<f64>> = rule
            .nodes
            .iter()
            .map(|&x| {
                let mut v = vec![0.0; packed_len(lmax)];
                table.eval_into(x, (1.0 - x * x).sqrt(), &mut v);
                v
            })
            .collect();
        for m in [0usize, 1, 5, 24] {
            for l1 in (m..=lmax).step_by(3) {
                for l2 in (m..=lmax).step_by(4) {
                    let mut acc = 0.0;
                    for (k, w) in rule.weights.iter().enumerate() {
                        acc += w * evals[k][idx(l1, m)] * evals[k][idx(l2, m)];
                    }
                    let expect = if l1 == l2 {
                        1.0 / (2.0 * std::f64::consts::PI)
                    } else {
                        0.0
                    };
                    assert!(
                        (acc - expect).abs() < 1e-12,
                        "m={m} l1={l1} l2={l2}: {acc} vs {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn vanishes_at_poles_for_m_nonzero() {
        let t = LegendreTable::new(10);
        for theta in [0.0, std::f64::consts::PI] {
            let v = t.eval(theta);
            for l in 1..=10 {
                for m in 1..=l {
                    assert!(v[idx(l, m)].abs() < 1e-13, "l={l} m={m}");
                }
            }
        }
    }

    #[test]
    fn addition_theorem_at_coincident_points() {
        // Σ_m |Y_{ℓm}|² = (2ℓ+1)/4π at any point.
        let lmax = 16;
        let t = LegendreTable::new(lmax);
        for &theta in &[0.3, 1.0, 2.2] {
            let v = t.eval(theta);
            for l in 0..=lmax {
                let mut s = v[idx(l, 0)] * v[idx(l, 0)];
                for m in 1..=l {
                    s += 2.0 * v[idx(l, m)] * v[idx(l, m)];
                }
                let expect = (2.0 * l as f64 + 1.0) / FOUR_PI;
                assert!(
                    (s - expect).abs() < 1e-11,
                    "l={l} θ={theta}: {s} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn stable_at_high_degree() {
        let lmax = 512;
        let t = LegendreTable::new(lmax);
        let v = t.eval(1.1);
        for l in 0..=lmax {
            for m in 0..=l {
                assert!(v[idx(l, m)].is_finite(), "l={l} m={m}");
            }
        }
        // Magnitudes stay bounded by the addition-theorem envelope.
        let max = v.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max < ((2.0 * lmax as f64 + 1.0) / FOUR_PI).sqrt() * 1.01);
    }

    #[test]
    fn packed_index_layout() {
        assert_eq!(idx(0, 0), 0);
        assert_eq!(idx(1, 0), 1);
        assert_eq!(idx(1, 1), 2);
        assert_eq!(idx(2, 0), 3);
        assert_eq!(packed_len(2), 6);
    }
}
