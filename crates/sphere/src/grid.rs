//! Latitude–longitude samplings of the sphere.
//!
//! Two grids appear in the paper:
//!
//! * the **equiangular** grid of ERA5 — `Nθ` co-latitudes
//!   `θ_i = iπ/(Nθ−1)` *including both poles* and `Nϕ` equally spaced
//!   longitudes (0.25° ⇒ 721 × 1440, band-limit `L = 720`),
//! * the **Gauss–Legendre** grid — co-latitudes at the roots of `P_{Nθ}`,
//!   giving exact quadrature for fields band-limited at `L ≤ Nθ`.
//!
//! Fields on either grid are stored row-major: index `i * nphi + j` for
//! co-latitude ring `i` and longitude `j`.

use exaclim_mathkit::GaussLegendre;
use serde::{Deserialize, Serialize};

/// Common interface over the supported spherical grids.
pub trait Grid {
    /// Number of co-latitude rings.
    fn ntheta(&self) -> usize;
    /// Number of longitude points.
    fn nphi(&self) -> usize;
    /// Co-latitude of ring `i`, in `[0, π]`.
    fn theta(&self, i: usize) -> f64;
    /// Longitude of column `j`, in `[0, 2π)`.
    fn phi(&self, j: usize) -> f64 {
        2.0 * std::f64::consts::PI * j as f64 / self.nphi() as f64
    }
    /// Quadrature weight of ring `i` such that
    /// `Σ_i w_i f(θ_i) ≈ ∫₀^π f(θ) sinθ dθ` for smooth `f`.
    fn ring_weight(&self, i: usize) -> f64;
    /// Total number of grid points.
    fn len(&self) -> usize {
        self.ntheta() * self.nphi()
    }
    /// True iff the grid has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Maximum band-limit `L` for which the forward transform on this grid
    /// is exact (quadrature-wise) for band-limited inputs.
    fn max_bandlimit(&self) -> usize;
    /// Solid-angle weight of point `(i, j)`: `ring_weight · 2π/Nϕ`.
    fn point_weight(&self, i: usize) -> f64 {
        self.ring_weight(i) * 2.0 * std::f64::consts::PI / self.nphi() as f64
    }
}

/// ERA5-style equiangular grid including both poles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EquiangularGrid {
    ntheta: usize,
    nphi: usize,
    #[serde(skip)]
    weights: Vec<f64>,
}

impl EquiangularGrid {
    /// Build a grid with `ntheta >= 2` rings (poles included) and
    /// `nphi >= 1` longitudes.
    pub fn new(ntheta: usize, nphi: usize) -> Self {
        assert!(ntheta >= 2, "equiangular grid needs both poles");
        assert!(nphi >= 1);
        let weights = clenshaw_curtis_sin_weights(ntheta);
        Self {
            ntheta,
            nphi,
            weights,
        }
    }

    /// The ERA5 0.25° layout: 721 × 1440, `L = 720`.
    pub fn era5_quarter_degree() -> Self {
        Self::new(721, 1440)
    }

    /// Grid resolution in degrees along latitude.
    pub fn dlat_degrees(&self) -> f64 {
        180.0 / (self.ntheta - 1) as f64
    }

    /// Equivalent grid spacing in kilometers at the equator
    /// (Earth radius 6371 km).
    pub fn dx_km(&self) -> f64 {
        2.0 * std::f64::consts::PI * 6371.0 / self.nphi as f64
    }
}

impl Grid for EquiangularGrid {
    fn ntheta(&self) -> usize {
        self.ntheta
    }
    fn nphi(&self) -> usize {
        self.nphi
    }
    fn theta(&self, i: usize) -> f64 {
        std::f64::consts::PI * i as f64 / (self.ntheta - 1) as f64
    }
    fn ring_weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
    fn max_bandlimit(&self) -> usize {
        // Paper §III.A.1: exact recovery requires Nθ > L and Nϕ ≥ 2L − 1.
        (self.ntheta - 1).min(self.nphi.div_ceil(2))
    }
}

/// Quadrature weights `w_i` for `∫₀^π f(θ) sinθ dθ ≈ Σ w_i f(θ_i)` on the
/// closed equiangular grid, exact for `f` a trigonometric polynomial of
/// degree < `ntheta` (Clenshaw–Curtis-type rule derived from the exact
/// moments `I(q)` of eq. 8 restricted to real even part).
fn clenshaw_curtis_sin_weights(ntheta: usize) -> Vec<f64> {
    let n = ntheta - 1; // number of intervals
    let mut w = vec![0.0f64; ntheta];
    // Express f by its cosine series on θ ∈ [0, π]:
    // ∫ cos(kθ) sinθ dθ = 2/(1-k²) for even k, 0 for odd k (k ≠ 1), 0 at k=1.
    // Discrete cosine quadrature: w_i = (2/n) Σ_k'' c_k cos(kθ_i) m_k, with
    // trapezoid end-point halving.
    for (i, wi) in w.iter_mut().enumerate() {
        let theta = std::f64::consts::PI * i as f64 / n as f64;
        let mut acc = 0.0;
        for k in (0..=n).step_by(2) {
            let mk = 2.0 / (1.0 - (k * k) as f64); // moment of cos(kθ)
            let ck = if k == 0 || k == n { 0.5 } else { 1.0 };
            acc += ck * mk * (k as f64 * theta).cos();
        }
        let endpoint = if i == 0 || i == n { 0.5 } else { 1.0 };
        *wi = acc * 2.0 / n as f64 * endpoint;
    }
    w
}

/// Gauss–Legendre grid: `ntheta` rings at the roots of `P_{ntheta}`.
#[derive(Debug, Clone)]
pub struct GaussLegendreGrid {
    nphi: usize,
    /// Co-latitudes in ascending order (north to south).
    thetas: Vec<f64>,
    /// GL weights mapped to θ (already include the sinθ Jacobian).
    weights: Vec<f64>,
}

impl GaussLegendreGrid {
    /// Build with `ntheta` rings and `nphi` longitudes.
    pub fn new(ntheta: usize, nphi: usize) -> Self {
        assert!(ntheta >= 1 && nphi >= 1);
        let rule = GaussLegendre::new(ntheta);
        // x = cosθ, descending x ⇒ ascending θ.
        let mut pairs: Vec<(f64, f64)> = rule
            .nodes
            .iter()
            .zip(&rule.weights)
            .map(|(&x, &w)| (x.acos(), w))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (thetas, weights) = pairs.into_iter().unzip();
        Self {
            nphi,
            thetas,
            weights,
        }
    }

    /// Smallest exact grid for band-limit `L`: `L` rings, `2L−1` longitudes.
    pub fn for_bandlimit(l: usize) -> Self {
        assert!(l >= 1);
        Self::new(l, (2 * l - 1).max(4))
    }
}

impl Grid for GaussLegendreGrid {
    fn ntheta(&self) -> usize {
        self.thetas.len()
    }
    fn nphi(&self) -> usize {
        self.nphi
    }
    fn theta(&self, i: usize) -> f64 {
        self.thetas[i]
    }
    fn ring_weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
    fn max_bandlimit(&self) -> usize {
        self.thetas.len().min(self.nphi.div_ceil(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equiangular_theta_includes_poles() {
        let g = EquiangularGrid::new(9, 16);
        assert_eq!(g.theta(0), 0.0);
        assert!((g.theta(8) - std::f64::consts::PI).abs() < 1e-15);
        assert!((g.theta(4) - std::f64::consts::PI / 2.0).abs() < 1e-15);
    }

    #[test]
    fn equiangular_weights_integrate_sin() {
        // Σ w_i must equal ∫ sinθ dθ = 2 (take f = 1).
        for ntheta in [5usize, 9, 33, 721] {
            let g = EquiangularGrid::new(ntheta, 8);
            let s: f64 = (0..ntheta).map(|i| g.ring_weight(i)).sum();
            assert!((s - 2.0).abs() < 1e-10, "ntheta={ntheta}: {s}");
        }
    }

    #[test]
    fn equiangular_weights_exact_for_cosines() {
        // ∫ cos(kθ) sinθ dθ = 2/(1−k²) (even k), 0 (odd k).
        let ntheta = 17;
        let g = EquiangularGrid::new(ntheta, 8);
        for k in 0..ntheta - 1 {
            let got: f64 = (0..ntheta)
                .map(|i| g.ring_weight(i) * (k as f64 * g.theta(i)).cos())
                .sum();
            let expect = if k % 2 == 0 {
                2.0 / (1.0 - (k * k) as f64)
            } else {
                0.0
            };
            assert!((got - expect).abs() < 1e-10, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn equiangular_weights_integrate_legendre() {
        // ∫ P_ℓ(cosθ) sinθ dθ = 0 for ℓ >= 1.
        let g = EquiangularGrid::new(33, 8);
        for l in 1..20usize {
            let got: f64 = (0..33)
                .map(|i| {
                    let x = g.theta(i).cos();
                    g.ring_weight(i) * legendre_p(l, x)
                })
                .sum();
            assert!(got.abs() < 1e-9, "l={l}: {got}");
        }
    }

    fn legendre_p(l: usize, x: f64) -> f64 {
        let mut p0 = 1.0;
        if l == 0 {
            return p0;
        }
        let mut p1 = x;
        for k in 2..=l {
            let kf = k as f64;
            let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
            p0 = p1;
            p1 = p2;
        }
        p1
    }

    #[test]
    fn era5_layout() {
        let g = EquiangularGrid::era5_quarter_degree();
        assert_eq!(g.ntheta(), 721);
        assert_eq!(g.nphi(), 1440);
        assert_eq!(g.max_bandlimit(), 720);
        assert!((g.dlat_degrees() - 0.25).abs() < 1e-12);
        assert!((g.dx_km() - 27.8).abs() < 0.5);
    }

    #[test]
    fn gl_grid_weights_sum_to_two() {
        let g = GaussLegendreGrid::new(64, 127);
        let s: f64 = (0..64).map(|i| g.ring_weight(i)).sum();
        assert!((s - 2.0).abs() < 1e-12);
        // θ ascending, strictly inside (0, π).
        for i in 0..63 {
            assert!(g.theta(i) < g.theta(i + 1));
        }
        assert!(g.theta(0) > 0.0 && g.theta(63) < std::f64::consts::PI);
    }

    #[test]
    fn gl_for_bandlimit_sizes() {
        let g = GaussLegendreGrid::for_bandlimit(32);
        assert_eq!(g.ntheta(), 32);
        assert_eq!(g.nphi(), 63);
        assert!(g.max_bandlimit() >= 32);
    }

    #[test]
    fn point_weights_cover_sphere() {
        // Σ_{ij} point_weight = 4π on both grids.
        let fourpi = 4.0 * std::f64::consts::PI;
        let g = EquiangularGrid::new(19, 36);
        let s: f64 = (0..g.ntheta())
            .map(|i| g.point_weight(i) * g.nphi() as f64)
            .sum();
        assert!((s - fourpi).abs() < 1e-9);
        let g = GaussLegendreGrid::new(24, 47);
        let s: f64 = (0..g.ntheta())
            .map(|i| g.point_weight(i) * g.nphi() as f64)
            .sum();
        assert!((s - fourpi).abs() < 1e-9);
    }
}
