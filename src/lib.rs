//! # exaclim-repro
//!
//! Umbrella package of the `exaclim` workspace: hosts the runnable examples
//! (`examples/`) and the cross-crate integration tests (`tests/`). The
//! public API lives in [`exaclim`] (crate `exaclim-core`); this crate simply
//! re-exports the workspace members for convenience.

pub use exaclim_climate as climate;
pub use exaclim_cluster as cluster;
pub use exaclim_fft as fft;
pub use exaclim_linalg as linalg;
pub use exaclim_mathkit as mathkit;
pub use exaclim_runtime as runtime;
pub use exaclim_serve as serve;
pub use exaclim_sht as sht;
pub use exaclim_sphere as sphere;
pub use exaclim_stats as stats;
pub use exaclim_store as store;

pub use exaclim;
