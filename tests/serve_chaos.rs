//! Chaos conformance: the serving stack must *survive* injected
//! failure, not merely report it. Under a seeded fault plan — socket
//! resets, short reads, EINTR, queue delays, decode corruption, a
//! worker panic — a multi-client mixed workload must still complete
//! with every response bit-identical to the in-process answer, the
//! self-healing [`Client`] absorbing every retryable failure. Overload
//! shedding must turn a saturated dispatch backlog into typed
//! retryable [`ServeError::Overloaded`] hints instead of unbounded
//! queues, and a graceful shutdown that lands mid-stream must surface
//! as a typed [`WireError::StreamTruncated`] at the client, never a
//! hang — on both the reactor and thread-per-connection paths.

use exaclim_runtime::{faults, FaultAction, FaultPlan};
use exaclim_serve::{
    Catalog, CatalogQuery, Client, ClientConfig, NetConfig, NetServer, NetServerHandle,
    ProductDescriptor, ProductSource, ProductStat, Request, Response, RetryPolicy, ServeConfig,
    ServeError, Server, SliceRequest, WireError,
};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use std::io::Cursor;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

const VPS: usize = 48;
const T_MAX: u64 = 96;
const CHUNK_T: usize = 17;

/// Fault plans are process-global: every test that installs one holds
/// this lock for its whole run so plans never bleed across tests.
fn fault_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Holds the global fault lock; disarms whatever plan is installed on
/// drop (including on panic) so a failing test cannot poison the rest.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn fault_guard() -> FaultGuard {
    let guard = fault_lock().lock().unwrap_or_else(|p| p.into_inner());
    faults::clear();
    FaultGuard(guard)
}

fn archive_bytes(vps: usize, t_max: u64, chunk_t: usize) -> Vec<u8> {
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..vps * t_max as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, FieldMeta::default(), vps, chunk_t, &data)
            .unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

fn spawn_with(config: NetConfig) -> (Arc<Server>, NetServerHandle) {
    let mut catalog = Catalog::new();
    catalog
        .open_archive_bytes("a", archive_bytes(VPS, T_MAX, CHUNK_T))
        .unwrap();
    let server = Arc::new(Server::new(catalog, ServeConfig::default()));
    let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), config)
        .unwrap()
        .spawn();
    (server, handle)
}

fn slice(member: &str, range: std::ops::Range<u64>) -> Request {
    Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: member.to_string(),
        range,
    })
}

/// A deterministic mixed batch, varied per client so the workload
/// exercises cross-client cache sharing and distinct chunk sets. Every
/// request's answer is a pure function of the batch (no `Stats`), so
/// responses can be compared bit-for-bit against the in-process answer.
fn mixed_batch(i: u64) -> Vec<Request> {
    vec![
        slice("t2m", i..T_MAX - i),
        slice("u10", (i * 3) % 40..T_MAX),
        slice("missing", 0..1),
        Request::WithDeadline {
            budget_ms: 60_000,
            request: Box::new(slice("t2m", 0..(8 + i))),
        },
        Request::WithDeadline {
            budget_ms: 0,
            request: Box::new(slice("u10", 0..4)),
        },
        Request::Product(ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "t2m".to_string(),
            },
            stat: ProductStat::MeanStd,
            time: Some(i..T_MAX - 2),
            space: None,
        }),
        Request::Catalog(CatalogQuery::ListArchives),
    ]
}

/// The tentpole acceptance run: 8 clients × both server paths, under a
/// seeded plan injecting short reads, EINTR, resets, read/write delays,
/// dispatch-queue delays, decode corruption, product failures, and
/// exactly one worker panic. Every batch a retrying client submits must
/// come back bit-identical to the in-process `handle_batch` answer —
/// the chaos shows up only in the resilience counters.
#[test]
fn chaos_workload_completes_bit_identical_under_seeded_faults() {
    let _guard = fault_guard();
    for reactor in [true, false] {
        let (server, handle) = spawn_with(NetConfig {
            reactor: Some(reactor),
            ..NetConfig::default()
        });
        let addr = handle.addr();

        // Expected answers are computed in-process with faults disarmed:
        // the ground truth the chaos run must reproduce exactly.
        let expected: Arc<Vec<Vec<Result<Response, ServeError>>>> = Arc::new(
            (0..8)
                .map(|i| server.handle_batch(&mixed_batch(i)))
                .collect(),
        );

        let injected_before = faults::injected();
        faults::install(
            FaultPlan::seeded(0xC0FFEE + u64::from(reactor))
                .rule("net.read", FaultAction::ShortRead, 0.05)
                .rule("net.read", FaultAction::Interrupt, 0.05)
                .rule(
                    "net.read",
                    FaultAction::Delay(Duration::from_millis(1)),
                    0.05,
                )
                .rule("net.read", FaultAction::Reset, 0.02)
                .rule(
                    "net.write",
                    FaultAction::Delay(Duration::from_millis(1)),
                    0.05,
                )
                .rule("net.write", FaultAction::Reset, 0.02)
                .rule("decode", FaultAction::Corrupt, 0.04)
                .rule("product", FaultAction::Error, 0.04)
                .rule(
                    "dispatch",
                    FaultAction::Delay(Duration::from_millis(1)),
                    0.1,
                )
                .rule_max("dispatch", FaultAction::Panic, 1.0, 1),
        );

        let workers: Vec<_> = (0..8u64)
            .map(|i| {
                let expected = Arc::clone(&expected);
                std::thread::spawn(move || {
                    let mut client = Client::connect_with(
                        addr,
                        ClientConfig {
                            connect_timeout: Some(Duration::from_secs(5)),
                            read_timeout: Some(Duration::from_secs(5)),
                            write_timeout: Some(Duration::from_secs(5)),
                            retry: Some(RetryPolicy {
                                max_retries: 16,
                                base_delay: Duration::from_millis(2),
                                max_delay: Duration::from_millis(50),
                                seed: i,
                            }),
                            ..ClientConfig::default()
                        },
                    )
                    .expect("chaos client connect");
                    let batch = mixed_batch(i);
                    for round in 0..12 {
                        let got = client
                            .batch(&batch)
                            .unwrap_or_else(|e| panic!("client {i} round {round}: {e}"));
                        assert_eq!(got, expected[i as usize], "client {i} round {round}");
                    }
                    client.client_stats()
                })
            })
            .collect();
        let client_stats: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

        let leg = format!("reactor={reactor}");
        assert!(
            faults::injected() > injected_before,
            "{leg}: no faults fired"
        );
        let net = handle.net_stats();
        assert!(net.faults_injected > 0, "{leg}: {net:?}");
        // The one guaranteed-retryable event is the capped worker panic:
        // some client saw its batch come back `Internal` and retried.
        let retries: u64 = client_stats.iter().map(|s| s.retries).sum();
        assert!(
            retries > 0,
            "{leg}: no client ever retried: {client_stats:?}"
        );
        assert!(server.stats().errors > 0, "{leg}: panic never surfaced");
        handle.shutdown();
        faults::clear();
    }
}

/// Satellite: a dispatch-worker panic must become a typed
/// [`ServeError::Internal`] response on that request's connection and
/// leave the server (and the connection) serving — it must never strand
/// the requester or kill the process.
#[test]
fn worker_panic_becomes_typed_internal_error_and_server_survives() {
    let _guard = fault_guard();
    for reactor in [true, false] {
        let (server, handle) = spawn_with(NetConfig {
            reactor: Some(reactor),
            ..NetConfig::default()
        });
        let batch = vec![slice("t2m", 0..12), slice("u10", 3..9)];
        let expected = server.handle_batch(&batch);

        faults::install(FaultPlan::seeded(7).rule_max("dispatch", FaultAction::Panic, 1.0, 1));
        let mut client = Client::connect(handle.addr()).unwrap();
        let poisoned = client.batch(&batch).unwrap();
        assert_eq!(poisoned.len(), batch.len(), "reactor={reactor}");
        for reply in &poisoned {
            assert_eq!(
                reply,
                &Err(ServeError::Internal(
                    "request execution panicked".to_string()
                )),
                "reactor={reactor}"
            );
        }
        // Same connection, next batch: the panic was contained.
        assert_eq!(client.batch(&batch).unwrap(), expected, "reactor={reactor}");
        assert!(handle.net_stats().faults_injected > 0, "reactor={reactor}");
        handle.shutdown();
        faults::clear();
    }
}

/// Acceptance: with the dispatch backlog saturated (one slow worker, a
/// backlog cap of 1), fresh requests draw typed retryable
/// [`ServeError::Overloaded`] responses instead of joining a doomed
/// queue, accepted requests still complete bit-identical, and a client
/// with a [`RetryPolicy`] rides the shedding out to a correct answer.
#[test]
fn overload_sheds_typed_retryable_errors_and_retrying_client_succeeds() {
    let _guard = fault_guard();
    let (server, handle) = spawn_with(NetConfig {
        reactor: Some(true),
        dispatch_threads: 1,
        max_dispatch_backlog: 1,
        shed_retry_after_ms: 5,
        ..NetConfig::default()
    });
    let addr = handle.addr();
    let batch = vec![slice("t2m", 0..24), slice("u10", 0..10)];
    let expected = Arc::new(server.handle_batch(&batch));

    // Every executed batch holds the lone dispatch worker for 20 ms, so
    // concurrent arrivals pile past the backlog cap of 1 and shed.
    faults::install(FaultPlan::seeded(99).rule(
        "dispatch",
        FaultAction::Delay(Duration::from_millis(20)),
        1.0,
    ));

    let flood: Vec<_> = (0..12)
        .map(|_| {
            let batch = batch.clone();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut shed_seen = 0u64;
                let mut served_seen = 0u64;
                for _ in 0..6 {
                    let got = client.batch(&batch).unwrap();
                    if got
                        .iter()
                        .all(|r| matches!(r, Err(ServeError::Overloaded { retry_after_ms: 5 })))
                    {
                        shed_seen += 1;
                    } else {
                        assert_eq!(got, *expected, "accepted batch must still be exact");
                        served_seen += 1;
                    }
                }
                (shed_seen, served_seen)
            })
        })
        .collect();
    let (shed_seen, served_seen) = flood
        .into_iter()
        .map(|t| t.join().unwrap())
        .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1));

    let net = handle.net_stats();
    assert!(net.shed > 0, "backlog never shed: {net:?}");
    assert!(shed_seen > 0, "no client observed Overloaded");
    assert!(served_seen > 0, "no batch was ever accepted");

    // A self-healing client honors `retry_after_ms` and gets the real
    // answer even while the slow-dispatch fault is still installed.
    let mut healing = Client::connect_with(
        addr,
        ClientConfig {
            retry: Some(RetryPolicy {
                max_retries: 32,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(50),
                seed: 0xFEED,
            }),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert_eq!(healing.batch(&batch).unwrap(), *expected);
    handle.shutdown();
    faults::clear();
}

/// Satellite: a graceful shutdown landing while a fragmented v3
/// response is half-written must surface as a typed
/// [`WireError::StreamTruncated`] at the client — never a hang and
/// never a silent partial result — on both server paths. A
/// between-fragments stall fault pins the response mid-stream so the
/// shutdown deterministically lands inside it.
#[test]
fn shutdown_mid_stream_surfaces_typed_stream_truncated() {
    let _guard = fault_guard();
    for reactor in [true, false] {
        // One 2 MiB member cut into 32 KiB fragments: 64 stream frames.
        let mut catalog = Catalog::new();
        catalog
            .open_archive_bytes("a", archive_bytes(2048, 128, 32))
            .unwrap();
        let server = Arc::new(Server::new(catalog, ServeConfig::default()));
        let handle = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&server),
            NetConfig {
                reactor: Some(reactor),
                stream_chunk_bytes: 32 << 10,
                idle_timeout: Some(Duration::from_millis(300)),
                ..NetConfig::default()
            },
        )
        .unwrap()
        .spawn();
        let addr = handle.addr();

        // 25 ms between fragments ⇒ the full stream takes ~1.6 s; the
        // shutdown below lands a few fragments in, mid-reassembly.
        faults::install(FaultPlan::seeded(11).rule(
            "net.write.frame",
            FaultAction::Stall(Duration::from_millis(25)),
            1.0,
        ));

        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let _ = tx.send(client.batch(&[slice("t2m", 0..128)]));
        });
        std::thread::sleep(Duration::from_millis(250));
        handle.shutdown();
        let got = rx
            .recv_timeout(Duration::from_secs(20))
            .expect("client hung after mid-stream shutdown");
        match got {
            Err(WireError::StreamTruncated) => {}
            other => panic!("reactor={reactor}: expected StreamTruncated, got {other:?}"),
        }
        reader.join().unwrap();
        faults::clear();
    }
}
