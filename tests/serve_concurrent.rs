//! Concurrent-serving correctness: many threads hammering one server must
//! observe exactly the bytes a sequential `ArchiveReader` returns —
//! regardless of cache pressure, batch shape, or request interleaving.

use exaclim_serve::{
    Catalog, CatalogAnswer, CatalogQuery, Request, Response, ServeConfig, Server, SliceRequest,
};
use exaclim_store::{ArchiveReader, ArchiveWriter, Codec, FieldMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};

const VPS: usize = 12;
const T_MAX: u64 = 96;
const CHUNK_T: usize = 7;

/// Two-member archive with incommensurate chunking on the second member.
fn build_archive(codec: Codec) -> Vec<u8> {
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase) in [("t2m", 0.0), ("u10", 1.7)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 250.0 + 40.0 * (i as f64 * 0.011 + phase).sin())
            .collect();
        w.add_field(name, codec, FieldMeta::default(), VPS, CHUNK_T, &data)
            .unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

fn server_over(bytes: Vec<u8>, cache_bytes: usize, cache_shards: usize) -> Server {
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", bytes).unwrap();
    Server::new(
        catalog,
        ServeConfig {
            cache_bytes,
            cache_shards,
            ..ServeConfig::default()
        },
    )
}

fn slice(member: &str, range: std::ops::Range<u64>) -> Request {
    Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: member.to_string(),
        range,
    })
}

/// Reference values for every request, read sequentially with a fresh
/// `ArchiveReader` per thread — the ground truth the server must match.
fn expect_slice(bytes: &[u8], member: &str, range: std::ops::Range<u64>) -> Vec<f64> {
    let mut r = ArchiveReader::new(Cursor::new(bytes.to_vec())).unwrap();
    r.read_field_slices(member, range).unwrap()
}

/// Many client threads × overlapping random slices, generous cache: every
/// response must be bit-identical to a sequential read.
#[test]
fn concurrent_overlapping_slices_are_bit_identical() {
    for codec in [Codec::F32Shuffle, Codec::Raw64] {
        let bytes = build_archive(codec);
        let server = server_over(bytes.clone(), 8 << 20, 4);
        let checked = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for thread in 0..8u64 {
                let server = &server;
                let bytes = &bytes;
                let checked = &checked;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + thread);
                    for _ in 0..20 {
                        let batch: Vec<Request> = (0..6)
                            .map(|_| {
                                let member = if rng.gen_bool(0.5) { "t2m" } else { "u10" };
                                let t0 = rng.gen_range(0..T_MAX - 10);
                                let t1 = rng.gen_range(t0..=T_MAX);
                                slice(member, t0..t1)
                            })
                            .collect();
                        for (request, response) in batch.iter().zip(server.handle_batch(&batch)) {
                            let Request::Slice(req) = request else {
                                unreachable!()
                            };
                            let Ok(Response::Slice(got)) = response else {
                                panic!("slice {req:?} failed");
                            };
                            let want = expect_slice(bytes, &req.member, req.range.clone());
                            assert_eq!(got.values, want, "{} {req:?}", codec.label());
                            checked.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(checked.load(Ordering::Relaxed), 8 * 20 * 6);
        // The workload overlapped: the cache must have been exercised.
        let cache = server.cache_stats();
        assert!(cache.hits > 0, "overlapping workload should hit the cache");
    }
}

/// A cache budget of ~2 chunks forces constant eviction under concurrent
/// load; responses must still be bit-identical — never stale, never torn.
#[test]
fn tiny_cache_budget_never_serves_stale_or_torn_chunks() {
    let bytes = build_archive(Codec::F16Shuffle);
    let chunk_bytes = CHUNK_T * VPS * 8; // decoded chunk cost in cache
                                         // One shard: the whole budget is one LRU holding ~2 chunks.
    let server = server_over(bytes.clone(), 2 * chunk_bytes, 1);
    std::thread::scope(|scope| {
        for thread in 0..6u64 {
            let server = &server;
            let bytes = &bytes;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 + thread);
                for _ in 0..30 {
                    let member = if rng.gen_bool(0.5) { "t2m" } else { "u10" };
                    let t0 = rng.gen_range(0..T_MAX - 20);
                    let range = t0..t0 + 20;
                    let responses = server.handle_batch(&[slice(member, range.clone())]);
                    let Ok(Response::Slice(got)) = &responses[0] else {
                        panic!("slice failed");
                    };
                    assert_eq!(got.values, expect_slice(bytes, member, range));
                }
            });
        }
    });
    let cache = server.cache_stats();
    assert!(cache.evictions > 0, "tiny budget must evict: {cache:?}");
    assert!(
        cache.resident_bytes <= 2 * chunk_bytes as u64,
        "budget respected: {cache:?}"
    );
}

/// One batch whose requests pile onto the same chunks: the batcher must
/// coalesce the fetches and still answer each request exactly.
#[test]
fn coalesced_batch_answers_match_and_dedupe() {
    let bytes = build_archive(Codec::F32);
    let server = server_over(bytes.clone(), 0, 1); // no cache: count raw fetches
    let batch: Vec<Request> = (0..24)
        .map(|i| slice("t2m", (i % 3)..(i % 3) + 14))
        .collect();
    for (request, response) in batch.iter().zip(server.handle_batch(&batch)) {
        let Request::Slice(req) = request else {
            unreachable!()
        };
        let Ok(Response::Slice(got)) = response else {
            panic!("slice failed")
        };
        assert_eq!(got.values, expect_slice(&bytes, "t2m", req.range.clone()));
    }
    let stats = server.stats();
    assert_eq!(stats.chunk_fetches, 3, "ranges 0..16 span chunks 0, 1, 2");
    // 8 × (0..14 → 2 chunks) + 16 × (1..15, 2..16 → 3 chunks each).
    assert_eq!(stats.chunk_touches, 8 * 2 + 16 * 3);
}

/// A cross-batch stampede on hot chunks: 8 threads fire the same batch
/// simultaneously on a cold server. The single-flight reservation map
/// must collapse all racing misses so each distinct chunk is decoded
/// **exactly once**, and every response stays bit-identical.
#[test]
fn hot_chunk_stampede_decodes_each_chunk_exactly_once() {
    let bytes = build_archive(Codec::F32Shuffle);
    let server = server_over(bytes.clone(), 32 << 20, 4);
    let range = 0..21u64; // chunks 0, 1, 2 of t2m (chunk_t = 7)
    let unique_chunks = 3;
    let barrier = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let server = &server;
            let bytes = &bytes;
            let barrier = &barrier;
            let range = range.clone();
            scope.spawn(move || {
                barrier.wait();
                // Separate batches (not one coalesced batch): only the
                // cache's reservation map can dedup across them.
                let responses = server.handle_batch(&[slice("t2m", range.clone())]);
                let Ok(Response::Slice(got)) = &responses[0] else {
                    panic!("slice failed");
                };
                assert_eq!(got.values, expect_slice(bytes, "t2m", range));
            });
        }
    });
    let stats = server.stats();
    assert_eq!(
        stats.chunk_decodes, unique_chunks,
        "stampede must decode each hot chunk exactly once: {stats:?}"
    );
    let cache = server.cache_stats();
    assert_eq!(
        cache.flight_leads, unique_chunks,
        "one leader per distinct chunk: {cache:?}"
    );
    // Whatever didn't lead either waited on a flight or arrived late
    // enough to hit the cache; nothing decoded twice.
    assert_eq!(
        cache.hits + cache.flight_waits + cache.flight_leads,
        8 * unique_chunks,
        "{cache:?}"
    );
}

/// The same concurrent workload served from every byte-source backend —
/// in-memory (zero-copy), mmap'd file, buffered file (mutex fallback),
/// and a raw stream — must be bit-identical to sequential reads.
#[test]
fn all_byte_source_backends_serve_identical_values() {
    let bytes = build_archive(Codec::F16Shuffle);
    let path = std::env::temp_dir().join(format!(
        "exaclim_serve_backends_{}.eca1",
        std::process::id()
    ));
    std::fs::write(&path, &bytes).unwrap();

    let mut servers: Vec<(&str, Server)> = Vec::new();
    let mut mem = Catalog::new();
    mem.open_archive_bytes("a", bytes.clone()).unwrap();
    servers.push(("bytes", Server::new(mem, ServeConfig::default())));
    let mut stream = Catalog::new();
    stream
        .open_archive("a", Cursor::new(bytes.clone()))
        .unwrap();
    servers.push(("stream", Server::new(stream, ServeConfig::default())));
    let mut mapped = Catalog::new();
    mapped
        .open_archive_source("a", exaclim_store::open_file_source(&path, true).unwrap())
        .unwrap();
    servers.push((
        "mmap-or-fallback",
        Server::new(mapped, ServeConfig::default()),
    ));
    let mut buffered = Catalog::new();
    buffered
        .open_archive_source("a", exaclim_store::open_file_source(&path, false).unwrap())
        .unwrap();
    servers.push((
        "buffered-file",
        Server::new(buffered, ServeConfig::default()),
    ));

    for (label, server) in &servers {
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let bytes = &bytes;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(500 + thread);
                    for _ in 0..10 {
                        let member = if rng.gen_bool(0.5) { "t2m" } else { "u10" };
                        let t0 = rng.gen_range(0..T_MAX - 12);
                        let range = t0..t0 + 12;
                        let responses = server.handle_batch(&[slice(member, range.clone())]);
                        let Ok(Response::Slice(got)) = &responses[0] else {
                            panic!("slice failed on backend {label}");
                        };
                        assert_eq!(
                            got.values,
                            expect_slice(bytes, member, range),
                            "backend {label}"
                        );
                    }
                });
            }
        });
        assert_eq!(server.stats().errors, 0, "backend {label}");
    }
    drop(servers);
    std::fs::remove_file(&path).ok();
}

/// Served values are decoded copies (`Arc<[f64]>`): they must stay valid
/// after the catalog — and with it any memory mapping — is gone. Borrowed
/// chunk views themselves cannot outlive the catalog at all (the borrow
/// checker ties their lifetime to it), so dropping the server is the
/// strongest unmap-safety exercise expressible.
#[test]
fn responses_outlive_the_unmapped_catalog() {
    let bytes = build_archive(Codec::Raw64);
    let path =
        std::env::temp_dir().join(format!("exaclim_unmap_safety_{}.eca1", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let mut catalog = Catalog::new();
    catalog
        .open_archive_source("a", exaclim_store::open_file_source(&path, true).unwrap())
        .unwrap();
    let server = Server::new(catalog, ServeConfig::default());
    let responses = server.handle_batch(&[slice("t2m", 3..40), slice("u10", 0..T_MAX)]);
    let values: Vec<Vec<f64>> = responses
        .into_iter()
        .map(|r| {
            let Ok(Response::Slice(s)) = r else { panic!() };
            s.values
        })
        .collect();
    drop(server); // drops the catalog, unmapping the file
    std::fs::remove_file(&path).ok();
    assert_eq!(values[0], expect_slice(&bytes, "t2m", 3..40));
    assert_eq!(values[1], expect_slice(&bytes, "u10", 0..T_MAX));
}

/// Emulation and metadata served concurrently with slices stay correct
/// and deterministic.
#[test]
fn mixed_concurrent_workload_is_deterministic() {
    use exaclim::{ClimateEmulator, EmulatorConfig};
    use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};

    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let reference = emulator.emulate(25, 42).unwrap();

    let bytes = build_archive(Codec::Raw64);
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", bytes.clone()).unwrap();
    catalog.register_emulator("em", emulator).unwrap();
    let server = Server::new(catalog, ServeConfig::default());

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let server = &server;
            let bytes = &bytes;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..10u64 {
                    let batch = vec![
                        slice("t2m", round..round + 30),
                        Request::Emulate {
                            emulator: "em".to_string(),
                            t_max: 25,
                            seed: 42,
                        },
                        Request::Catalog(CatalogQuery::MemberInfo {
                            archive: "a".to_string(),
                            member: "u10".to_string(),
                        }),
                    ];
                    let responses = server.handle_batch(&batch);
                    let Ok(Response::Slice(got)) = &responses[0] else {
                        panic!()
                    };
                    assert_eq!(got.values, expect_slice(bytes, "t2m", round..round + 30));
                    let Ok(Response::Emulate(ds)) = &responses[1] else {
                        panic!()
                    };
                    assert_eq!(
                        ds.data, reference.data,
                        "served emulation must be bit-identical per seed"
                    );
                    let Ok(Response::Catalog(CatalogAnswer::Member(info))) = &responses[2] else {
                        panic!()
                    };
                    assert_eq!((info.t_max, info.values_per_slice), (T_MAX, VPS as u64));
                }
            });
        }
    });
    assert_eq!(server.stats().errors, 0);
}
