//! Streaming conformance: the zero-copy streamed wire path must be a
//! *transparent* optimization. For every op type, over both file
//! backends and both server paths, a streamed response must reassemble
//! bit-identical to the non-streamed response a version-2 peer gets —
//! and to the in-process answer. Mid-stream failures (error frames,
//! desyncs, hard closes) must surface as typed errors, and a server
//! draining a response orders of magnitude larger than its stream
//! fragment must never own more than about one fragment per connection.

use exaclim::{ClimateEmulator, EmulatorConfig, TrainedEmulator};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::wire::{self, FrameKind, HEADER_LEN};
use exaclim_serve::{
    Catalog, CatalogQuery, Client, NetConfig, NetServer, ProductDescriptor, ProductSource,
    ProductStat, Request, Response, ScenarioSpec, ServeConfig, Server, SliceRequest, WireError,
};
use exaclim_store::{open_file_source, ArchiveWriter, Codec, FieldMeta};
use std::io::{Cursor, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const VPS: usize = 48;
const T_MAX: u64 = 96;
const CHUNK_T: usize = 17;

fn archive_bytes() -> Vec<u8> {
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, FieldMeta::default(), VPS, CHUNK_T, &data)
            .unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

fn train_emulator() -> TrainedEmulator {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap()
}

fn slice(member: &str, range: std::ops::Range<u64>) -> Request {
    Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: member.to_string(),
        range,
    })
}

/// One batch touching every op type whose answer is deterministic:
/// slices (multi-chunk, whole-member, and failing), emulation, derived
/// products, an ensemble, and catalog queries. `Request::Stats` is
/// checked separately — serving the batch itself moves its counters.
fn every_op_batch() -> Vec<Request> {
    vec![
        slice("t2m", 0..T_MAX),
        slice("u10", 3..71),
        slice("t2m", 14..15),
        slice("missing", 0..1),
        slice("u10", 10..9999),
        Request::Emulate {
            emulator: "em".to_string(),
            t_max: 16,
            seed: 42,
        },
        Request::Product(ProductDescriptor {
            source: ProductSource::Member {
                archive: "a".to_string(),
                member: "t2m".to_string(),
            },
            stat: ProductStat::MeanStd,
            time: Some(5..80),
            space: None,
        }),
        Request::Product(ProductDescriptor {
            source: ProductSource::Ensemble(ScenarioSpec {
                emulator: "em".to_string(),
                t_max: 24,
                seed: 9,
                realizations: 3,
            }),
            stat: ProductStat::Trend,
            time: None,
            space: None,
        }),
        Request::Ensemble(ScenarioSpec {
            emulator: "em".to_string(),
            t_max: 12,
            seed: 7,
            realizations: 2,
        }),
        Request::Catalog(CatalogQuery::ListArchives),
        Request::Catalog(CatalogQuery::MemberInfo {
            archive: "a".to_string(),
            member: "u10".to_string(),
        }),
    ]
}

/// The conformance matrix: every op type, streamed (version 3, tiny
/// fragments so even catalog answers fragment) and non-streamed
/// (version 2), over both `EXACLIM_MMAP` file backends × both server
/// paths (reactor and thread-per-connection fallback). All four answers
/// must equal the in-process answer — per-request errors included.
#[test]
fn streamed_responses_reassemble_bit_identical_for_every_op() {
    let path =
        std::env::temp_dir().join(format!("exaclim_stream_test_{}.eca1", std::process::id()));
    std::fs::write(&path, archive_bytes()).unwrap();
    for use_mmap in [false, true] {
        for reactor in [true, false] {
            let leg = format!("mmap={use_mmap} reactor={reactor}");
            let mut catalog = Catalog::new();
            catalog
                .open_archive_source("a", open_file_source(&path, use_mmap).unwrap())
                .unwrap();
            catalog.register_emulator("em", train_emulator()).unwrap();
            let server = Arc::new(Server::new(catalog, ServeConfig::default()));
            let config = NetConfig {
                reactor: Some(reactor),
                // Tiny fragments: every response — even a member-info
                // answer — crosses several stream frames.
                stream_chunk_bytes: 64,
                ..NetConfig::default()
            };
            let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), config)
                .unwrap()
                .spawn();
            let batch = every_op_batch();
            let in_process = server.handle_batch(&batch);
            let mut v3 = Client::connect(handle.addr()).unwrap();
            let mut v2 = Client::connect_with_version(handle.addr(), 2).unwrap();
            assert_eq!(v3.batch(&batch).unwrap(), in_process, "streamed leg {leg}");
            assert_eq!(
                v2.batch(&batch).unwrap(),
                in_process,
                "single-frame leg {leg}"
            );

            // Stats streams and reassembles too (its counters move with
            // every batch, so monotonicity is the invariant, not value
            // equality with the snapshots above).
            let a = v3.stats().unwrap();
            let b = v3.stats().unwrap();
            assert!(b.batches > a.batches, "{leg}");

            // The last response's counters land after the client has
            // already reassembled it; give the server a moment to settle.
            let mut stats = handle.net_stats();
            for _ in 0..200 {
                if stats.frames_per_response.iter().sum::<u64>() >= 4 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
                stats = handle.net_stats();
            }
            assert!(stats.streamed_responses >= 2, "{leg}: {stats:?}");
            assert!(
                stats.stream_frames_out > stats.streamed_responses,
                "{leg}: fragments must outnumber streamed responses: {stats:?}"
            );
            assert!(
                stats.frames_per_response.iter().sum::<u64>() >= 4,
                "{leg}: histogram not populated: {stats:?}"
            );
            assert_eq!(stats.wire_errors, 0, "{leg}");
            handle.shutdown();
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Write every byte of `frames` to `stream`.
fn write_all_frames(stream: &mut TcpStream, frames: &[Vec<u8>]) {
    for f in frames {
        stream.write_all(f).unwrap();
    }
    stream.flush().unwrap();
}

/// Cut a response body into raw stream-frame bytes for frame id `id`.
fn fake_stream_frames(id: u64, chunk: usize) -> Vec<Vec<u8>> {
    let values: Vec<f64> = (0..512).map(|i| i as f64 * 0.5).collect();
    let responses = vec![Ok(Response::Slice(exaclim_serve::SliceData {
        archive: "a".to_string(),
        member: "t2m".to_string(),
        range: 0..values.len() as u64 / VPS as u64,
        values_per_slice: VPS as u64,
        values,
    }))];
    let body = wire::ResponseBody::from_responses(responses);
    let mut s = wire::FrameStream::response(body, id, wire::VERSION, chunk).unwrap();
    let mut frames = Vec::new();
    while let Some(f) = s.next_frame() {
        frames.push(f.to_bytes(s.body()));
    }
    assert!(frames.len() >= 3, "fake stream must span several frames");
    frames
}

/// Mid-stream failure modes, forced by a fake raw-socket server (a real
/// server never emits them): an error frame interrupting a stream is
/// honored as the remote failure it reports; a response frame mid-stream
/// and a hard close mid-stream are both `StreamTruncated`.
#[test]
fn mid_stream_errors_and_truncation_are_typed() {
    #[derive(Clone, Copy)]
    enum Fault {
        ErrorFrame,
        ResponseFrame,
        HardClose,
    }
    for fault in [Fault::ErrorFrame, Fault::ResponseFrame, Fault::HardClose] {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Consume the client's request; its id keys every reply.
            let (header, _) = wire::read_frame(&mut stream).unwrap();
            let frames = fake_stream_frames(header.id, 8);
            // Two in-order fragments, FIN withheld…
            write_all_frames(&mut stream, &frames[..2]);
            // …then the fault.
            match fault {
                Fault::ErrorFrame => {
                    let err = wire::encode_frame_v(
                        wire::VERSION,
                        FrameKind::Error,
                        header.id,
                        &wire::encode_error_payload("boom mid-stream"),
                    )
                    .unwrap();
                    stream.write_all(&err).unwrap();
                }
                Fault::ResponseFrame => {
                    let resp =
                        wire::encode_frame_v(wire::VERSION, FrameKind::Response, header.id, &[])
                            .unwrap();
                    stream.write_all(&resp).unwrap();
                }
                Fault::HardClose => {}
            }
            drop(stream);
        });
        let mut client = Client::connect(addr).unwrap();
        let err = client.batch(&[Request::Stats]).unwrap_err();
        match fault {
            Fault::ErrorFrame => {
                let WireError::Remote(msg) = &err else {
                    panic!("error frame mid-stream: {err:?}");
                };
                assert!(msg.contains("boom mid-stream"), "{msg}");
            }
            Fault::ResponseFrame | Fault::HardClose => {
                assert!(
                    matches!(err, WireError::StreamTruncated),
                    "mid-stream fault must truncate: {err:?}"
                );
            }
        }
        fake.join().unwrap();
    }
}

/// An out-of-order fragment from a (fake) server surfaces as the typed
/// sequencing violation, not silent corruption.
#[test]
fn out_of_order_fragment_is_a_typed_sequence_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let (header, _) = wire::read_frame(&mut stream).unwrap();
        let frames = fake_stream_frames(header.id, 8);
        // Fragment 0, then fragment 2: seq 1 went missing.
        write_all_frames(&mut stream, &[frames[0].clone(), frames[2].clone()]);
        drop(stream);
    });
    let mut client = Client::connect(addr).unwrap();
    let err = client.batch(&[Request::Stats]).unwrap_err();
    assert!(
        matches!(
            err,
            WireError::StreamSequence {
                expected: 1,
                got: 2
            }
        ),
        "{err:?}"
    );
    fake.join().unwrap();
}

/// The memory-bound regression test: a slice orders of magnitude larger
/// than one stream fragment drains through a 1-byte-per-read trickle
/// client, and the server's per-connection owned bytes (header + copied
/// metadata — the `peak_conn_buffered_bytes` gauge) never exceed one
/// fragment plus small change. On both server paths.
#[test]
fn per_connection_memory_is_bounded_by_one_fragment_under_trickle() {
    const BIG_VPS: usize = 256;
    const BIG_T: u64 = 256;
    const FRAGMENT: usize = 4096;
    let data: Vec<f64> = (0..BIG_VPS * BIG_T as usize)
        .map(|i| (i as f64).sin())
        .collect();
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    w.add_field(
        "big",
        Codec::Raw64,
        FieldMeta::default(),
        BIG_VPS,
        32,
        &data,
    )
    .unwrap();
    let bytes = w.finish().unwrap().0.into_inner();

    for reactor in [true, false] {
        let mut catalog = Catalog::new();
        catalog.open_archive_bytes("a", bytes.clone()).unwrap();
        let server = Arc::new(Server::new(catalog, ServeConfig::default()));
        let config = NetConfig {
            reactor: Some(reactor),
            stream_chunk_bytes: FRAGMENT,
            ..NetConfig::default()
        };
        let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), config)
            .unwrap()
            .spawn();

        let request = Request::Slice(SliceRequest {
            archive: "a".to_string(),
            member: "big".to_string(),
            range: 0..BIG_T,
        });
        let payload = wire::encode_request_batch(std::slice::from_ref(&request));
        let frame = wire::encode_frame(FrameKind::Request, 1, &payload).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&frame).unwrap();
        stream.flush().unwrap();

        // Trickle: one byte per read. The response is ~512 KiB — far
        // beyond every socket buffer — so the server spends most of this
        // blocked on a slow consumer, exactly when unbounded buffering
        // would show up.
        let mut one = [0u8; 1];
        let mut read_byte = |stream: &mut TcpStream| -> u8 {
            stream.read_exact(&mut one).unwrap();
            one[0]
        };
        let mut reasm = wire::StreamReassembler::new();
        let reassembled = loop {
            let mut head = [0u8; HEADER_LEN];
            for b in head.iter_mut() {
                *b = read_byte(&mut stream);
            }
            let header = wire::FrameHeader::decode(&head).unwrap();
            assert_eq!(header.kind, FrameKind::Stream, "big slice must stream");
            let mut payload = vec![0u8; header.len as usize];
            for b in payload.iter_mut() {
                *b = read_byte(&mut stream);
            }
            if let Some(done) = reasm.push(&header, &payload).unwrap() {
                break done;
            }
        };
        let decoded = wire::decode_response_batch(&reassembled).unwrap();
        assert_eq!(
            decoded,
            server.handle_batch(std::slice::from_ref(&request)),
            "reactor={reactor}"
        );

        let stats = handle.net_stats();
        let bound = (FRAGMENT + HEADER_LEN + 512) as u64;
        assert!(
            stats.peak_conn_buffered_bytes <= bound,
            "reactor={reactor}: owned {} bytes exceeds one-fragment bound {bound}",
            stats.peak_conn_buffered_bytes
        );
        assert!(stats.streamed_responses >= 1, "reactor={reactor}");
        assert!(
            stats.stream_frames_out as usize >= (BIG_VPS * BIG_T as usize * 8) / FRAGMENT,
            "reactor={reactor}: {stats:?}"
        );
        drop(stream);
        handle.shutdown();
    }
}
