//! End-to-end integration: generator → training → emulation → validation,
//! across temporal resolutions and precision policies.

use exaclim::{validate_consistency, ClimateEmulator, EmulatorConfig, TrainedEmulator};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_linalg::precision::PrecisionPolicy;

fn daily_training(lmax_data: usize, years: usize) -> exaclim_climate::Dataset {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(lmax_data));
    generator.generate_member(0, years * 365)
}

#[test]
fn full_pipeline_daily_dp() {
    let training = daily_training(12, 3);
    let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let emulation = em.emulate(3 * 365, 1).unwrap();
    let report = validate_consistency(&training, &emulation);
    assert!(report.passes(), "{report:?}");
}

#[test]
fn full_pipeline_monthly_resolution() {
    // Monthly cadence (τ = 12): different periodic structure, same pipeline.
    let mut gen_cfg = SyntheticEra5Config::small_daily(12);
    gen_cfg.tau = 12;
    gen_cfg.ar_phi = 0.4;
    let generator = SyntheticEra5::new(gen_cfg);
    let training = generator.generate_member(0, 12 * 40);
    let mut cfg = EmulatorConfig::small(8);
    cfg.tau = 12;
    let em = ClimateEmulator::train(&training, cfg).unwrap();
    let emulation = em.emulate(12 * 40, 5).unwrap();
    let report = validate_consistency(&training, &emulation);
    assert!(report.passes(), "{report:?}");
}

#[test]
fn full_pipeline_mixed_precision_covariance() {
    // The covariance factor at DP/HP must still produce consistent
    // emulations (Figure 4's claim), end to end.
    let training = daily_training(12, 3);
    let mut cfg = EmulatorConfig::small(8);
    cfg.precision = PrecisionPolicy::dp_hp();
    cfg.tile = 16;
    let em = ClimateEmulator::train(&training, cfg).unwrap();
    let emulation = em.emulate(2 * 365, 9).unwrap();
    let report = validate_consistency(&training, &emulation);
    assert!(report.passes(), "{report:?}");
}

#[test]
fn persistence_roundtrip_through_disk() {
    let training = daily_training(12, 2);
    let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let path = std::env::temp_dir().join("exaclim_model_test.json");
    std::fs::write(&path, em.to_json()).unwrap();
    let loaded = TrainedEmulator::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        em.emulate(60, 3).unwrap().data,
        loaded.emulate(60, 3).unwrap().data,
        "persisted model must emulate identically"
    );
}

#[test]
fn independent_realizations_share_climate_statistics() {
    // Multiple emulations from one model: inter-realization spread behaves
    // like ensemble spread (paper §I: emulators replace large ensembles).
    let training = daily_training(12, 2);
    let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let a = em.emulate(365, 10).unwrap();
    let b = em.emulate(365, 20).unwrap();
    let ra = validate_consistency(&training, &a);
    let rb = validate_consistency(&training, &b);
    assert!(ra.passes() && rb.passes());
    // Realizations differ pointwise (weather) …
    let diff: f64 = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    assert!(diff > 0.5, "distinct realizations expected");
    // … but agree in climatology.
    let mean_a: f64 = a.data.iter().sum::<f64>() / a.data.len() as f64;
    let mean_b: f64 = b.data.iter().sum::<f64>() / b.data.len() as f64;
    assert!((mean_a - mean_b).abs() < 1.0);
}

#[test]
fn emulator_extends_beyond_training_period() {
    // Emulate twice the training length — projection mode.
    let training = daily_training(12, 2);
    let em = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let long = em.emulate(4 * 365, 11).unwrap();
    assert_eq!(long.t_max, 4 * 365);
    assert!(long.data.iter().all(|v| (150.0..360.0).contains(v)));
}
