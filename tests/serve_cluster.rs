//! Sharded-cluster correctness: a consistent-hash [`Router`] over N
//! backend shards must be a transparent front end. Every response —
//! successes, typed per-request errors, deadline verdicts — must be
//! bit-identical to a single in-process `Server` over the same catalog,
//! on both reactor paths, and must *stay* bit-identical when a shard is
//! killed mid-workload (seeded victim) and its keys fail over to their
//! replicas. Placement skew is pinned by property test: at 128 virtual
//! nodes no shard owns more than 2× the mean key count.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::{
    assign_primaries, Catalog, CatalogQuery, Client, KeyWeight, NetConfig, NetServer,
    NetServerHandle, ProductDescriptor, ProductSource, ProductStat, Request, Response, Router,
    RouterConfig, ScenarioSpec, ServeConfig, Server, SliceRequest,
};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::sync::Arc;

const VPS: usize = 10;
const T_MAX: u64 = 64;
const CHUNK_T: usize = 9;

/// Two same-shaped members with real time metadata so trend and anomaly
/// products are well-posed (same archive as the scenario suite).
fn archive_bytes() -> Vec<u8> {
    let meta = FieldMeta {
        ntheta: 2,
        nphi: 5,
        start_year: 2000,
        tau: 365,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, meta, VPS, CHUNK_T, &data).unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

fn train_emulator() -> exaclim::TrainedEmulator {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap()
}

/// The full catalog every shard (and the reference server) opens: the
/// data plane is replicated, the ring partitions cache affinity.
fn full_catalog(emulator: &exaclim::TrainedEmulator) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", archive_bytes()).unwrap();
    catalog.register_emulator("em", emulator.clone()).unwrap();
    catalog
}

/// N identical backend shards on loopback plus the in-process reference.
fn spawn_cluster(
    shards: usize,
    net: &NetConfig,
) -> (Server, Vec<NetServerHandle>, Vec<exaclim_serve::ShardSpec>) {
    let emulator = train_emulator();
    let reference = Server::new(full_catalog(&emulator), ServeConfig::default());
    let handles: Vec<NetServerHandle> = (0..shards)
        .map(|_| {
            let server = Arc::new(Server::new(full_catalog(&emulator), ServeConfig::default()));
            NetServer::bind("127.0.0.1:0", server, net.clone())
                .unwrap()
                .spawn()
        })
        .collect();
    let specs = handles
        .iter()
        .enumerate()
        .map(|(i, h)| exaclim_serve::ShardSpec::numbered(i, h.addr()))
        .collect();
    (reference, handles, specs)
}

fn slice(member: &str, range: std::ops::Range<u64>) -> Request {
    Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: member.to_string(),
        range,
    })
}

fn spec(seed: u64, t_max: u64, realizations: u32) -> ScenarioSpec {
    ScenarioSpec {
        emulator: "em".to_string(),
        t_max,
        seed,
        realizations,
    }
}

fn member_product(member: &str, stat: ProductStat) -> ProductDescriptor {
    ProductDescriptor {
        source: ProductSource::Member {
            archive: "a".to_string(),
            member: member.to_string(),
        },
        stat,
        time: None,
        space: None,
    }
}

/// Every op type with deterministic answers: slices (good and bad),
/// emulation (good and unknown), all four catalog queries, derived
/// products over members and ensembles, ensemble sugar, and both
/// deadline verdicts (a generous budget passes, a zero budget is always
/// [`exaclim_serve::ServeError::DeadlineExpired`]).
fn full_workload(seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::new();
    for _ in 0..6 {
        let member = if rng.gen_bool(0.5) { "t2m" } else { "u10" };
        let t0 = rng.gen_range(0..T_MAX - 5);
        let t1 = rng.gen_range(t0..=T_MAX);
        batch.push(slice(member, t0..t1));
    }
    batch.push(Request::Emulate {
        emulator: "em".to_string(),
        t_max: 12,
        seed,
    });
    batch.push(Request::Catalog(CatalogQuery::ListArchives));
    batch.push(Request::Catalog(CatalogQuery::ListMembers {
        archive: "a".to_string(),
    }));
    batch.push(Request::Catalog(CatalogQuery::MemberInfo {
        archive: "a".to_string(),
        member: "u10".to_string(),
    }));
    batch.push(Request::Catalog(CatalogQuery::ListEmulators));
    batch.push(Request::Product(member_product(
        "t2m",
        ProductStat::MeanStd,
    )));
    batch.push(Request::Product(member_product(
        "u10",
        ProductStat::Anomaly {
            archive: "a".to_string(),
            member: "t2m".to_string(),
        },
    )));
    batch.push(Request::Product(ProductDescriptor {
        source: ProductSource::Ensemble(spec(seed, 40, 3)),
        stat: ProductStat::TukeyExtremes { tail_per_mille: 25 },
        time: None,
        space: None,
    }));
    batch.push(Request::Ensemble(spec(seed + 1, 32, 2)));
    batch.push(Request::WithDeadline {
        budget_ms: 60_000,
        request: Box::new(slice("t2m", 0..T_MAX)),
    });
    batch.push(Request::WithDeadline {
        budget_ms: 0,
        request: Box::new(slice("u10", 0..4)),
    });
    // Deterministic failures route and reassemble like successes.
    batch.push(slice("missing", 0..1));
    batch.push(slice("t2m", 10..9999));
    batch.push(Request::Emulate {
        emulator: "nope".to_string(),
        t_max: 5,
        seed: 1,
    });
    batch
}

fn reactor_paths() -> [NetConfig; 2] {
    [
        NetConfig {
            reactor: Some(true),
            ..NetConfig::default()
        },
        NetConfig {
            reactor: Some(false),
            ..NetConfig::default()
        },
    ]
}

/// 4 shards behind a router vs one in-process server: every op type,
/// bit-identical, on both reactor paths — and again through a
/// router-backed `NetServer` front end over a real client socket.
#[test]
fn router_matches_single_server_bit_identically() {
    for net in reactor_paths() {
        let (reference, handles, specs) = spawn_cluster(4, &net);
        let router = Arc::new(Router::connect(specs, RouterConfig::default()).unwrap());

        for round in 0..3u64 {
            let batch = full_workload(1000 + round);
            assert_eq!(
                router.handle_batch(&batch),
                reference.handle_batch(&batch),
                "reactor={:?} round {round}",
                net.reactor
            );
        }

        // The same equivalence through the wire front end: clients of a
        // router-backed NetServer cannot tell it from a single server.
        let front = NetServer::bind_router("127.0.0.1:0", Arc::clone(&router), net.clone())
            .unwrap()
            .spawn();
        let mut client = Client::connect(front.addr()).unwrap();
        let batch = full_workload(2000);
        assert_eq!(
            client.batch(&batch).unwrap(),
            reference.handle_batch(&batch),
            "reactor={:?} via front end",
            net.reactor
        );
        let stats = router.router_stats();
        assert!(stats.routed >= 4 * full_workload(0).len() as u64);
        assert!(
            stats.fanout_batches >= 1,
            "a full workload must split across shards: {stats:?}"
        );
        drop(client);
        front.shutdown();
        for h in handles {
            h.shutdown();
        }
    }
}

/// Kill one shard (seeded victim) mid-workload: with replication 2 the
/// dead shard's keys fail over to their replicas and every response —
/// including the batches racing the kill — stays bit-identical. The
/// router records the failover.
#[test]
fn shard_kill_failover_stays_bit_identical() {
    let kill_seed: u64 = std::env::var("EXACLIM_CLUSTER_KILL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xDEAD);
    for net in reactor_paths() {
        let (reference, mut handles, specs) = spawn_cluster(4, &net);
        let router = Router::connect(specs, RouterConfig::default()).unwrap();

        // Warm: all four shards answer.
        let warm = full_workload(kill_seed);
        assert_eq!(router.handle_batch(&warm), reference.handle_batch(&warm));

        // Seeded victim, then the same workload shapes again.
        let victim = (kill_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            % handles.len() as u64) as usize;
        handles.remove(victim).shutdown();

        for round in 0..3u64 {
            let batch = full_workload(kill_seed + round);
            assert_eq!(
                router.handle_batch(&batch),
                reference.handle_batch(&batch),
                "reactor={:?} round {round} after killing shard {victim}",
                net.reactor
            );
        }
        let stats = router.router_stats();
        assert!(
            stats.failovers >= 1,
            "killing shard {victim} must record a failover: {stats:?}"
        );
        let down = router.shard_health().iter().filter(|h| !h.alive).count();
        assert!(down >= 1, "the victim must be marked down");
        for h in handles {
            h.shutdown();
        }
    }
}

/// `Request::Stats` fans out: the router answers the field-wise sum of
/// every live shard's counters, which must account for every slice the
/// cluster served.
#[test]
fn stats_fan_out_sums_shard_counters() {
    let (_, handles, specs) = spawn_cluster(4, &NetConfig::default());
    let router = Router::connect(specs, RouterConfig::default()).unwrap();

    let slices: Vec<Request> = (0..16).map(|i| slice("t2m", i..i + 4)).collect();
    assert!(router.handle_batch(&slices).iter().all(|r| r.is_ok()));

    match router.handle(&Request::Stats).unwrap() {
        Response::Stats(sum) => {
            assert_eq!(sum.slices, 16, "cluster-wide slice count: {sum:?}");
            assert_eq!(sum.errors, 0);
            assert!(sum.batches >= 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    // A deadline-wrapped stats probe with zero budget expires on every
    // shard and the router surfaces the error, not a partial sum.
    let expired = router.handle(&Request::WithDeadline {
        budget_ms: 0,
        request: Box::new(Request::Stats),
    });
    assert_eq!(expired, Err(exaclim_serve::ServeError::DeadlineExpired));
    for h in handles {
        h.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement skew, pinned: for any key population and ring seed, at
    /// 128 virtual nodes over 4 shards no shard's primary-key count
    /// exceeds 2× the mean — the bound `plan_layout` enforces via the
    /// cluster simulation, checked here against the exact assignment
    /// the live ring uses.
    #[test]
    fn placement_skew_stays_under_two_x_mean(
        n_keys in 256usize..512,
        ring_seed in 0u64..1000,
    ) {
        let labels: Vec<String> = (0..4).map(|i| format!("shard-{i}")).collect();
        let keys: Vec<KeyWeight> = (0..n_keys)
            .map(|i| KeyWeight::unit(format!("arc{}", i % 5), format!("member-{i}")))
            .collect();
        let primaries = assign_primaries(&labels, 128, ring_seed, &keys);
        let mut counts = [0usize; 4];
        for p in primaries {
            counts[p] += 1;
        }
        let mean = n_keys as f64 / 4.0;
        let max = *counts.iter().max().unwrap() as f64;
        prop_assert!(
            max <= 2.0 * mean,
            "skew {} over mean {} (counts {:?})", max, mean, counts
        );
        prop_assert!(counts.iter().all(|&c| c > 0), "empty shard: {:?}", counts);
    }
}
