//! The numerical chain the paper's mixed-precision design must preserve:
//! covariance → band-demoted tiles → task-parallel Cholesky → Gaussian
//! sampling → recovered covariance, at each precision variant.

use exaclim_linalg::cholesky::factorization_residual;
use exaclim_linalg::precision::PrecisionPolicy;
use exaclim_linalg::tiled::{exp_covariance, TiledMatrix};
use exaclim_mathkit::rng::MultivariateNormal;
use exaclim_runtime::{parallel_tile_cholesky, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Factor with a policy, sample, and measure the max absolute error of the
/// recovered covariance entries.
fn chain_error(n: usize, b: usize, policy: PrecisionPolicy, samples: usize) -> (f64, f64) {
    let a = exp_covariance(n, n as f64 / 8.0, 1e-4);
    let mut tm = TiledMatrix::from_dense(&a, n, b, &policy);
    parallel_tile_cholesky(&mut tm, 4, SchedulerKind::WorkStealing).expect("SPD");
    let residual = factorization_residual(&a, &tm);
    let l = tm.to_dense_lower();
    let mut mvn = MultivariateNormal::from_lower_factor(vec![0.0; n], &l, n);
    let mut rng = StdRng::seed_from_u64(7);
    let mut cov = vec![0.0f64; n * n];
    for _ in 0..samples {
        let x = mvn.sample(&mut rng);
        for i in 0..n {
            for j in 0..n {
                cov[i * n + j] += x[i] * x[j];
            }
        }
    }
    let mut max_err = 0.0f64;
    for (c, t) in cov.iter().zip(&a) {
        max_err = max_err.max((c / samples as f64 - t).abs());
    }
    (residual, max_err)
}

#[test]
fn dp_chain_recovers_covariance() {
    let (res, cov_err) = chain_error(24, 8, PrecisionPolicy::dp(), 30_000);
    assert!(res < 1e-13, "residual {res}");
    assert!(
        cov_err < 0.06,
        "covariance error {cov_err} (Monte-Carlo floor)"
    );
}

#[test]
fn dp_sp_chain_recovers_covariance() {
    let (res, cov_err) = chain_error(24, 8, PrecisionPolicy::dp_sp(), 30_000);
    assert!(res < 1e-4, "residual {res}");
    assert!(cov_err < 0.06, "covariance error {cov_err}");
}

#[test]
fn dp_hp_chain_recovers_covariance_within_hp_tolerance() {
    let (res, cov_err) = chain_error(24, 8, PrecisionPolicy::dp_hp(), 30_000);
    // HP residual is bounded by the binary16 unit roundoff envelope …
    assert!(res < 0.02, "residual {res}");
    // … and the sampled covariance stays within Monte-Carlo noise + HP
    // perturbation — the property Figure 4 relies on.
    assert!(cov_err < 0.08, "covariance error {cov_err}");
}

#[test]
fn residual_hierarchy_matches_unit_roundoffs() {
    let (r_dp, _) = chain_error(32, 8, PrecisionPolicy::dp(), 100);
    let (r_sp, _) = chain_error(32, 8, PrecisionPolicy::dp_sp(), 100);
    let (r_hp, _) = chain_error(32, 8, PrecisionPolicy::dp_hp(), 100);
    assert!(r_dp < r_sp && r_sp < r_hp, "{r_dp} < {r_sp} < {r_hp}");
    // Roughly proportional to unit roundoff jumps (2^-53 → 2^-24 → 2^-11).
    assert!(r_sp / r_dp > 1e3, "SP/DP gap");
    assert!(r_hp / r_sp > 1e1, "HP/SP gap");
}
