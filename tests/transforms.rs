//! Cross-crate transform checks: the SHT engines against the direct
//! spherical-harmonic oracle, and spline up-sampling against band-limited
//! synthesis on the finer grid.

use exaclim_climate::upsample::upsample_field;
use exaclim_mathkit::Complex64;
use exaclim_sht::{HarmonicCoeffs, ShtPlan};
use exaclim_sphere::grid::Grid;
use exaclim_sphere::harmonics::ylm;

/// Build a field as an explicit sum of `Y_{ℓm}` evaluations (O(L⁴) oracle).
fn oracle_field(coeffs: &HarmonicCoeffs, grid: &dyn Grid) -> Vec<f64> {
    let lmax = coeffs.lmax();
    let mut out = vec![0.0f64; grid.len()];
    for i in 0..grid.ntheta() {
        let theta = grid.theta(i);
        for j in 0..grid.nphi() {
            let phi = grid.phi(j);
            let mut acc = Complex64::ZERO;
            for l in 0..lmax {
                for m in -(l as i64)..=(l as i64) {
                    acc += coeffs.get(l, m) * ylm(l, m, theta, phi);
                }
            }
            out[i * grid.nphi() + j] = acc.re;
        }
    }
    out
}

fn test_coeffs(lmax: usize) -> HarmonicCoeffs {
    let mut c = HarmonicCoeffs::zeros(lmax);
    let mut v = 0.3;
    for l in 0..lmax {
        for m in 0..=l {
            v = (v * 7.7f64).sin();
            c.set(l, m, Complex64::new(v, if m == 0 { 0.0 } else { -v * 0.6 }));
        }
    }
    c
}

#[test]
fn synthesis_matches_direct_ylm_sum() {
    let lmax = 6;
    let coeffs = test_coeffs(lmax);
    let plan = ShtPlan::equiangular(lmax, 9, 13);
    let fast = plan.synthesis(&coeffs);
    let slow = oracle_field(&coeffs, plan.grid());
    for (a, b) in fast.iter().zip(&slow) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }
}

#[test]
fn wigner_analysis_inverts_oracle_synthesis() {
    let lmax = 6;
    let coeffs = test_coeffs(lmax);
    let plan = ShtPlan::equiangular(lmax, 8, 12);
    let field = oracle_field(&coeffs, plan.grid());
    let back = plan.analysis(&field);
    assert!(coeffs.max_abs_diff(&back) < 1e-10);
}

#[test]
fn engines_agree_at_moderate_bandlimit() {
    let lmax = 32;
    let coeffs = test_coeffs(lmax);
    let eq = ShtPlan::equiangular(lmax, lmax + 1, 2 * lmax + 1);
    let gl = ShtPlan::gauss_legendre(lmax);
    let c1 = eq.analysis(&eq.synthesis(&coeffs));
    let c2 = gl.analysis(&gl.synthesis(&coeffs));
    assert!(coeffs.max_abs_diff(&c1) < 1e-9, "wigner engine");
    assert!(coeffs.max_abs_diff(&c2) < 1e-9, "gl engine");
}

#[test]
fn upsampled_field_approximates_bandlimited_resynthesis() {
    // Synthesize a smooth band-limited field at coarse resolution, spline
    // up-sample ×2, and compare against exact synthesis on the fine grid —
    // the paper's §IV.A up-scaling step.
    let lmax = 8;
    let coeffs = test_coeffs(lmax);
    let coarse_plan = ShtPlan::equiangular(lmax, 17, 32);
    let coarse = coarse_plan.synthesis(&coeffs);
    let (up, fnt, fnp) = upsample_field(&coarse, 17, 32, 2);
    let fine_plan = ShtPlan::equiangular(lmax, fnt, fnp);
    let exact = fine_plan.synthesis(&coeffs);
    let scale = exact.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-9);
    let mut max_rel = 0.0f64;
    for (a, b) in up.iter().zip(&exact) {
        max_rel = max_rel.max((a - b).abs() / scale);
    }
    assert!(max_rel < 0.05, "spline upsampling error {max_rel}");
    // And the up-sampled grid supports a higher band-limit than the coarse
    // one (the point of up-scaling in the paper).
    assert!(fine_plan.grid().max_bandlimit() > coarse_plan.grid().max_bandlimit());
}

#[test]
fn power_spectrum_survives_the_transform_chain() {
    let lmax = 12;
    let coeffs = test_coeffs(lmax);
    let plan = ShtPlan::equiangular(lmax, lmax + 3, 2 * lmax + 4);
    let back = plan.analysis(&plan.synthesis(&coeffs));
    let p1 = coeffs.power_spectrum();
    let p2 = back.power_spectrum();
    for (a, b) in p1.iter().zip(&p2) {
        assert!((a - b).abs() < 1e-9 * a.max(1.0), "{a} vs {b}");
    }
}
