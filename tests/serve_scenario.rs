//! Scenario-engine correctness: derived products served over the wire
//! must be bit-identical to in-process `Server::handle_batch` answers —
//! errors included — on both byte-source backends and at any
//! `EXACLIM_THREADS` (the CI matrix runs this suite under several legs);
//! a stampede on one product descriptor must compute it exactly once;
//! and ensemble fan-out must equal per-realization emulation with the
//! published decorrelated seeds.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::scenario::realization_seed;
use exaclim_serve::{
    Catalog, Client, NetConfig, NetServer, ProductDescriptor, ProductSource, ProductStat, Request,
    Response, ScenarioSpec, ServeConfig, Server, SliceRequest,
};
use exaclim_store::{open_file_source, ArchiveWriter, Codec, FieldMeta};
use std::io::Cursor;
use std::sync::{Arc, Barrier};

const VPS: usize = 10;
const T_MAX: u64 = 64;
const CHUNK_T: usize = 9;

/// Two same-shaped field members (so one can baseline the other), with
/// real time metadata (`tau`, `start_year`) so trend products are
/// well-posed over the archive too.
fn archive_bytes() -> Vec<u8> {
    let meta = FieldMeta {
        ntheta: 2,
        nphi: 5,
        start_year: 2000,
        tau: 365,
    };
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, meta, VPS, CHUNK_T, &data).unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

fn train_emulator() -> exaclim::TrainedEmulator {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap()
}

fn server_over(bytes: Vec<u8>) -> Server {
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", bytes).unwrap();
    catalog.register_emulator("em", train_emulator()).unwrap();
    Server::new(catalog, ServeConfig::default())
}

fn spec(seed: u64, t_max: u64, realizations: u32) -> ScenarioSpec {
    ScenarioSpec {
        emulator: "em".to_string(),
        t_max,
        seed,
        realizations,
    }
}

fn member_product(member: &str, stat: ProductStat) -> ProductDescriptor {
    ProductDescriptor {
        source: ProductSource::Member {
            archive: "a".to_string(),
            member: member.to_string(),
        },
        stat,
        time: None,
        space: None,
    }
}

/// Eight threads release on a barrier into the same product descriptor:
/// the single-flight reservation must hold the computation at exactly
/// one, every thread must get the identical answer, and the losers must
/// have either coalesced onto the leader's flight or hit the cache.
#[test]
fn stampeded_product_computes_exactly_once() {
    const THREADS: usize = 8;
    let server = server_over(archive_bytes());
    let descriptor = ProductDescriptor {
        source: ProductSource::Ensemble(spec(9, 40, 4)),
        stat: ProductStat::MeanStd,
        time: None,
        space: None,
    };
    let barrier = Barrier::new(THREADS);
    let answers: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let server = &server;
                let barrier = &barrier;
                let descriptor = descriptor.clone();
                scope.spawn(move || {
                    barrier.wait();
                    server
                        .handle(&Request::Product(descriptor))
                        .expect("product evaluates")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for answer in &answers[1..] {
        assert_eq!(answer, &answers[0], "stampede answers diverged");
    }

    let stats = server.stats();
    assert_eq!(stats.products, THREADS as u64);
    assert_eq!(
        stats.product_computes, 1,
        "stampede must compute the product exactly once"
    );
    let cache = server.product_cache_stats();
    assert_eq!(cache.flight_leads, 1);
    assert_eq!(
        cache.flight_waits + cache.hits,
        (THREADS - 1) as u64,
        "every non-leader must have coalesced or hit the cache: {cache:?}"
    );
}

/// Every new op — ensemble fan-out and each derived statistic, over both
/// archive members and fresh ensemble output, with and without windows,
/// plus the validation error paths — must round-trip the wire
/// bit-identically to the in-process answer, on both byte-source
/// backends.
#[test]
fn derived_products_bit_identical_network_vs_in_process() {
    let bytes = archive_bytes();
    let path = std::env::temp_dir().join(format!(
        "exaclim_serve_scenario_{}.eca1",
        std::process::id()
    ));
    std::fs::write(&path, &bytes).unwrap();

    let batch: Vec<Request> = vec![
        Request::Ensemble(spec(3, 48, 4)),
        Request::Product(member_product("t2m", ProductStat::Raw)),
        Request::Product(ProductDescriptor {
            time: Some(5..37),
            space: Some(2..8),
            ..member_product("t2m", ProductStat::Raw)
        }),
        Request::Product(member_product("t2m", ProductStat::MeanStd)),
        Request::Product(member_product(
            "t2m",
            ProductStat::Anomaly {
                archive: "a".to_string(),
                member: "u10".to_string(),
            },
        )),
        Request::Product(member_product("t2m", ProductStat::Trend)),
        Request::Product(member_product("u10", ProductStat::Persistence { order: 2 })),
        Request::Product(ProductDescriptor {
            source: ProductSource::Ensemble(spec(3, 48, 4)),
            stat: ProductStat::TukeyExtremes { tail_per_mille: 25 },
            time: None,
            space: None,
        }),
        Request::Product(ProductDescriptor {
            source: ProductSource::Ensemble(spec(3, 48, 4)),
            stat: ProductStat::Trend,
            time: Some(8..48),
            space: None,
        }),
        // Error paths travel inside the response frame, bit-identically.
        Request::Product(member_product("missing", ProductStat::Raw)),
        Request::Product(ProductDescriptor {
            source: ProductSource::Member {
                archive: "nope".to_string(),
                member: "t2m".to_string(),
            },
            stat: ProductStat::Raw,
            time: None,
            space: None,
        }),
        Request::Product(ProductDescriptor {
            time: Some(0..9999),
            ..member_product("t2m", ProductStat::Raw)
        }),
        Request::Product(member_product("t2m", ProductStat::Persistence { order: 0 })),
        Request::Product(member_product(
            "t2m",
            ProductStat::TukeyExtremes { tail_per_mille: 0 },
        )),
        Request::Ensemble(spec(1, 10, 0)),
        Request::Ensemble(ScenarioSpec {
            emulator: "nope".to_string(),
            ..spec(1, 10, 2)
        }),
    ];

    for use_mmap in [false, true] {
        let mut catalog = Catalog::new();
        catalog
            .open_archive_source("a", open_file_source(&path, use_mmap).unwrap())
            .unwrap();
        catalog.register_emulator("em", train_emulator()).unwrap();
        let server = Arc::new(Server::new(catalog, ServeConfig::default()));
        let expected = server.handle_batch(&batch);
        assert!(expected.iter().take(9).all(|r| r.is_ok()));
        assert!(expected.iter().skip(9).all(|r| r.is_err()));

        let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), NetConfig::default())
            .unwrap()
            .spawn();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(client.batch(&batch).unwrap(), expected, "mmap={use_mmap}");
        handle.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

/// The ensemble block is exactly `realizations` independent emulator
/// runs with the published per-realization seed schedule — so a client
/// can reproduce (or shard) any member of the ensemble with plain
/// `Request::Emulate` calls.
#[test]
fn ensemble_equals_per_realization_emulation() {
    let server = server_over(archive_bytes());
    let (t_max, base_seed, realizations) = (32u64, 77u64, 3u32);
    let Ok(Response::Product(ensemble)) =
        server.handle(&Request::Ensemble(spec(base_seed, t_max, realizations)))
    else {
        panic!("ensemble failed");
    };
    assert_eq!(ensemble.realizations, realizations);
    assert_eq!(ensemble.rows, t_max);

    let seeds: Vec<u64> = (0..realizations)
        .map(|k| realization_seed(base_seed, k))
        .collect();
    assert!(
        seeds.windows(2).all(|w| w[0] != w[1]),
        "seed schedule must decorrelate realizations: {seeds:?}"
    );
    for (k, seed) in seeds.iter().enumerate() {
        let Ok(Response::Emulate(ds)) = server.handle(&Request::Emulate {
            emulator: "em".to_string(),
            t_max: t_max as usize,
            seed: *seed,
        }) else {
            panic!("emulate failed");
        };
        assert_eq!(
            ensemble.realization(k as u32),
            &ds.data[..],
            "realization {k} diverged from its direct emulation"
        );
    }
}

/// Semantic spot-checks pinning the statistics to ground truth: raw
/// re-slicing matches the slice path value-for-value, a member's anomaly
/// against itself is identically zero, and mean/std match a direct
/// reduction of the served values.
#[test]
fn derived_statistics_match_ground_truth() {
    let server = server_over(archive_bytes());

    // Raw with a time and space window == the windowed slice response.
    let (time, space) = (7..29u64, 3..9u64);
    let Ok(Response::Slice(slice)) = server.handle(&Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: "t2m".to_string(),
        range: time.clone(),
    })) else {
        panic!("slice failed");
    };
    let Ok(Response::Product(raw)) = server.handle(&Request::Product(ProductDescriptor {
        time: Some(time.clone()),
        space: Some(space.clone()),
        ..member_product("t2m", ProductStat::Raw)
    })) else {
        panic!("raw product failed");
    };
    let s_len = (space.end - space.start) as usize;
    assert_eq!(raw.rows, time.end - time.start);
    assert_eq!(raw.values_per_row, s_len as u64);
    for (t, row) in raw.values.chunks_exact(s_len).enumerate() {
        let full = &slice.values[t * VPS..(t + 1) * VPS];
        assert_eq!(row, &full[space.start as usize..space.end as usize]);
    }

    // Self-anomaly is identically zero.
    let Ok(Response::Product(anomaly)) = server.handle(&Request::Product(member_product(
        "t2m",
        ProductStat::Anomaly {
            archive: "a".to_string(),
            member: "t2m".to_string(),
        },
    ))) else {
        panic!("anomaly failed");
    };
    assert!(anomaly.values.iter().all(|v| *v == 0.0));

    // Mean/std agree with a direct per-location reduction of the raw data.
    let Ok(Response::Product(ms)) = server.handle(&Request::Product(member_product(
        "t2m",
        ProductStat::MeanStd,
    ))) else {
        panic!("mean/std failed");
    };
    assert_eq!((ms.rows, ms.values_per_row), (2, VPS as u64));
    let Ok(Response::Slice(full)) = server.handle(&Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: "t2m".to_string(),
        range: 0..T_MAX,
    })) else {
        panic!("full slice failed");
    };
    for j in 0..VPS {
        let samples: Vec<f64> = (0..T_MAX as usize)
            .map(|t| full.values[t * VPS + j])
            .collect();
        let mean = exaclim_mathkit::stats::mean(&samples);
        let std = exaclim_mathkit::stats::variance(&samples).sqrt();
        assert_eq!(ms.row(0, 0)[j], mean, "mean at location {j}");
        assert_eq!(ms.row(0, 1)[j], std, "std at location {j}");
    }
}
