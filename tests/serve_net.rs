//! Network front-end correctness: the framed-TCP wire must be a
//! transparent transport. Responses served over loopback must be
//! bit-identical to in-process `Server::handle_batch` answers — per-request
//! errors included — under concurrent clients and on both byte-source
//! backends; and hostile bytes on the socket must surface as typed errors,
//! never a panic, a desynced response, or a dead server.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_serve::wire::{self, FrameKind, HEADER_LEN, MAX_FRAME_PAYLOAD};
use exaclim_serve::{
    Catalog, CatalogQuery, Client, NetConfig, NetServer, NetServerHandle, Request, Response,
    ServeConfig, Server, SliceRequest, WireError,
};
use exaclim_store::{open_file_source, ArchiveWriter, Codec, FieldMeta};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const VPS: usize = 10;
const T_MAX: u64 = 64;
const CHUNK_T: usize = 9;

fn archive_bytes() -> Vec<u8> {
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, FieldMeta::default(), VPS, CHUNK_T, &data)
            .unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

/// A server over an in-memory copy of the test archive.
fn spawn_server() -> (Arc<Server>, NetServerHandle) {
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", archive_bytes()).unwrap();
    let server = Arc::new(Server::new(catalog, ServeConfig::default()));
    let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), NetConfig::default())
        .unwrap()
        .spawn();
    (server, handle)
}

fn slice(member: &str, range: std::ops::Range<u64>) -> Request {
    Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: member.to_string(),
        range,
    })
}

/// A mixed batch with deterministic answers: slices, catalog queries, and
/// requests that must fail (bad member, bad range, unknown emulator).
fn mixed_batch(seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::new();
    for _ in 0..5 {
        let member = if rng.gen_bool(0.5) { "t2m" } else { "u10" };
        let t0 = rng.gen_range(0..T_MAX - 5);
        let t1 = rng.gen_range(t0..=T_MAX);
        batch.push(slice(member, t0..t1));
    }
    batch.push(Request::Catalog(CatalogQuery::ListArchives));
    batch.push(Request::Catalog(CatalogQuery::MemberInfo {
        archive: "a".to_string(),
        member: "u10".to_string(),
    }));
    batch.push(slice("missing", 0..1));
    batch.push(slice("t2m", 10..9999));
    batch.push(Request::Emulate {
        emulator: "nope".to_string(),
        t_max: 5,
        seed: 1,
    });
    batch
}

/// ≥4 concurrent clients over loopback: every response — successes *and*
/// typed per-request errors — must equal the in-process answer for the
/// same batch.
#[test]
fn loopback_matches_in_process_bit_identically_under_concurrency() {
    let (server, handle) = spawn_server();
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for thread in 0..5u64 {
            let server = &server;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..6 {
                    let batch = mixed_batch(thread * 100 + round);
                    let over_wire = client.batch(&batch).unwrap();
                    let in_process = server.handle_batch(&batch);
                    assert_eq!(over_wire, in_process, "thread {thread} round {round}");
                }
            });
        }
    });
    assert_eq!(handle.net_stats().wire_errors, 0);
    handle.shutdown();
}

/// The same equivalence over file-backed archives, on both `EXACLIM_MMAP`
/// backends: the wire must not care where the bytes live.
#[test]
fn loopback_matches_in_process_on_both_file_backends() {
    let path = std::env::temp_dir().join(format!("exaclim_net_test_{}.eca1", std::process::id()));
    std::fs::write(&path, archive_bytes()).unwrap();
    for use_mmap in [false, true] {
        let mut catalog = Catalog::new();
        catalog
            .open_archive_source("a", open_file_source(&path, use_mmap).unwrap())
            .unwrap();
        let server = Arc::new(Server::new(catalog, ServeConfig::default()));
        let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), NetConfig::default())
            .unwrap()
            .spawn();
        let addr = handle.addr();
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let server = &server;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let batch = mixed_batch(7000 + thread);
                    assert_eq!(
                        client.batch(&batch).unwrap(),
                        server.handle_batch(&batch),
                        "mmap={use_mmap} thread {thread}"
                    );
                });
            }
        });
        handle.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

/// Emulation responses round-trip the wire bit-identically too (f64
/// payload with full precision preserved).
#[test]
fn emulate_over_the_wire_is_bit_identical() {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    let emulator = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let reference = emulator.emulate(20, 42).unwrap();

    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", archive_bytes()).unwrap();
    catalog.register_emulator("em", emulator).unwrap();
    let server = Arc::new(Server::new(catalog, ServeConfig::default()));
    let handle = NetServer::bind("127.0.0.1:0", server, NetConfig::default())
        .unwrap()
        .spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client
        .request(&Request::Emulate {
            emulator: "em".to_string(),
            t_max: 20,
            seed: 42,
        })
        .unwrap();
    let Ok(Response::Emulate(ds)) = response else {
        panic!("emulate failed: {response:?}");
    };
    assert_eq!(ds, reference, "wire dataset diverged from direct emulate");
    handle.shutdown();
}

/// Pipelining: several request frames in flight on one connection;
/// responses come back in send order, each matching its own batch.
#[test]
fn pipelined_batches_answer_in_order() {
    let (server, handle) = spawn_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let batches: Vec<Vec<Request>> = (0..4).map(|i| mixed_batch(9000 + i)).collect();
    for batch in &batches {
        client.send(batch).unwrap();
    }
    for batch in &batches {
        assert_eq!(client.recv().unwrap(), server.handle_batch(batch));
    }
    handle.shutdown();
}

/// The stats op over the wire reflects the serving counters.
#[test]
fn stats_op_counts_served_requests() {
    let (_, handle) = spawn_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .batch(&[slice("t2m", 0..10), slice("u10", 5..20)])
        .unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.slices, 2);
    assert!(stats.batches >= 1);
    handle.shutdown();
}

/// Raw-socket helper: write `bytes`, then read one frame back (the
/// server's error report), returning its kind and message.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<(FrameKind, String)> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
    let (header, payload) = wire::read_frame(&mut stream).ok()?;
    let msg = wire::decode_error_payload(&payload).ok()?;
    Some((header.kind, msg))
}

/// Malformed, truncated, oversized, and wrong-version frames each draw a
/// typed error report (or a clean close) and never take the server down.
#[test]
fn hostile_frames_are_rejected_and_server_survives() {
    let (server, handle) = spawn_server();
    let addr = handle.addr();
    let good_payload = wire::encode_request_batch(&[slice("t2m", 0..4)]);
    let good_frame = wire::encode_frame(FrameKind::Request, 1, &good_payload).unwrap();
    // Header-level rejects are probed with empty-payload frames so the
    // server closes with nothing unread (a clean FIN, not a racy RST).
    let empty_frame = wire::encode_frame(FrameKind::Request, 1, &[]).unwrap();

    // Bad magic.
    let mut bad = empty_frame.clone();
    bad[0] = b'Z';
    let (kind, msg) = send_raw(addr, &bad).expect("error frame");
    assert_eq!(kind, FrameKind::Error);
    assert!(msg.contains("magic"), "{msg}");

    // Wrong protocol version.
    let mut bad = empty_frame.clone();
    bad[4] = 9;
    let (kind, msg) = send_raw(addr, &bad).expect("error frame");
    assert_eq!(kind, FrameKind::Error);
    assert!(msg.contains("version 9"), "{msg}");

    // Oversized payload claim — rejected from the header alone, before
    // any payload is read or buffered.
    let mut bad = empty_frame.clone();
    bad[16..20].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    let (kind, msg) = send_raw(addr, &bad).expect("error frame");
    assert_eq!(kind, FrameKind::Error);
    assert!(msg.contains("cap"), "{msg}");

    // Bit-flipped payload fails the CRC.
    let mut bad = good_frame.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x10;
    let (kind, msg) = send_raw(addr, &bad).expect("error frame");
    assert_eq!(kind, FrameKind::Error);
    assert!(msg.contains("checksum"), "{msg}");

    // Truncated frame: write half, then close the write side.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(&good_frame[..good_frame.len() / 2])
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // Best-effort error frame or clean close — but never a hang.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
    }

    // Valid framing, garbage payload (decode error).
    {
        let mut garbage = vec![0xFFu8; 32];
        garbage[0] = 200; // impossible request count
        let frame = wire::encode_frame(FrameKind::Request, 5, &garbage).unwrap();
        let (kind, msg) = send_raw(addr, &frame).expect("error frame");
        assert_eq!(kind, FrameKind::Error);
        assert!(msg.contains("malformed"), "{msg}");
    }

    // A response frame from a client is a protocol violation.
    {
        let frame = wire::encode_frame(FrameKind::Response, 6, &[]).unwrap();
        let (kind, msg) = send_raw(addr, &frame).expect("error frame");
        assert_eq!(kind, FrameKind::Error);
        assert!(msg.contains("frame kind"), "{msg}");
    }

    assert!(handle.net_stats().wire_errors >= 6);

    // After all that abuse, a fresh client still gets served correctly.
    let mut client = Client::connect(addr).unwrap();
    let batch = vec![slice("t2m", 0..4)];
    assert_eq!(client.batch(&batch).unwrap(), server.handle_batch(&batch));
    handle.shutdown();
}

/// Fuzz the decoder the way the store fuzzes its container: random bytes,
/// random truncations, and random bit flips of valid frames must always
/// come back as `Err(...)` or a valid value — never a panic, and never an
/// allocation sized by a hostile claim (the decode cap mirrors the
/// store's 1 GiB chunk cap).
#[test]
fn frame_decoder_survives_random_and_mutated_input() {
    let mut rng = StdRng::seed_from_u64(0xECF1);
    let requests = mixed_batch(1);
    let responses: Vec<_> = vec![
        Ok(Response::Catalog(exaclim_serve::CatalogAnswer::Archives(
            vec![],
        ))),
        Err(exaclim_serve::ServeError::BadRequest("x".to_string())),
    ];
    let valid_frames = [
        wire::encode_frame(
            FrameKind::Request,
            1,
            &wire::encode_request_batch(&requests),
        )
        .unwrap(),
        wire::encode_frame(
            FrameKind::Response,
            2,
            &wire::encode_response_batch(&responses),
        )
        .unwrap(),
        wire::encode_frame(FrameKind::Error, 3, &wire::encode_error_payload("boom")).unwrap(),
    ];

    // Pure noise: decode_frame plus both payload decoders on raw bytes.
    for _ in 0..400 {
        let len = rng.gen_range(0..600usize);
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        let _ = wire::decode_frame(&buf);
        let _ = wire::decode_request_batch(&buf);
        let _ = wire::decode_response_batch(&buf);
    }

    // Noise that passes framing: a correct header around random payloads,
    // so the payload decoders see CRC-valid garbage.
    for _ in 0..400 {
        let len = rng.gen_range(0..300usize);
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        let frame = wire::encode_frame(FrameKind::Request, 0, &payload).unwrap();
        let (_, got) = wire::decode_frame(&frame).unwrap();
        let _ = wire::decode_request_batch(got);
        let _ = wire::decode_response_batch(got);
    }

    // Truncations and single-bit flips of valid frames.
    for frame in &valid_frames {
        for _ in 0..300 {
            let cut = rng.gen_range(0..frame.len());
            let _ = wire::decode_frame(&frame[..cut]);

            let mut flipped = frame.clone();
            let byte = rng.gen_range(0..flipped.len());
            flipped[byte] ^= 1 << rng.gen_range(0..8u32);
            if let Ok((header, payload)) = wire::decode_frame(&flipped) {
                // A flip that survives framing (it hit the id field, say)
                // must still decode cleanly or fail typed.
                match header.kind {
                    FrameKind::Request => {
                        let _ = wire::decode_request_batch(payload);
                    }
                    FrameKind::Response => {
                        let _ = wire::decode_response_batch(payload);
                    }
                    FrameKind::Error => {
                        let _ = wire::decode_error_payload(payload);
                    }
                    FrameKind::Stream => {
                        let _ = wire::StreamReassembler::new().push(&header, payload);
                    }
                }
            }
        }
    }
}

/// Cut a real response into raw streamed frame byte vectors by driving
/// the server-side [`wire::FrameStream`] with a small fragment size.
fn stream_frames(id: u64, chunk: usize) -> Vec<Vec<u8>> {
    let values: Vec<f64> = (0..2048).map(|i| i as f64 * 0.25).collect();
    let responses = vec![Ok(Response::Slice(exaclim_serve::SliceData {
        archive: "a".to_string(),
        member: "t2m".to_string(),
        range: 0..values.len() as u64 / VPS as u64,
        values_per_slice: VPS as u64,
        values,
    }))];
    let body = wire::ResponseBody::from_responses(responses);
    let mut s = wire::FrameStream::response(body, id, wire::VERSION, chunk).unwrap();
    let mut frames = Vec::new();
    while let Some(f) = s.next_frame() {
        frames.push(f.to_bytes(s.body()));
    }
    frames
}

/// Streamed-frame hostility, the same way the store fuzzes its container:
/// duplicated, reordered, and skipped sequence numbers, interleaved frame
/// ids, missing FINs, truncations, and random bit flips of real stream
/// fragments must each come back as a typed [`WireError`] — never a panic
/// — and a stream frame aimed at the *server* draws the unexpected-kind
/// error report while the server keeps serving.
#[test]
fn stream_frame_fuzz_is_typed_and_server_survives() {
    let mut rng = StdRng::seed_from_u64(0x57EA);
    let frames = stream_frames(11, 64);
    assert!(frames.len() >= 4, "test body must actually stream");

    // The happy path reassembles (sanity check for everything below).
    {
        let mut reasm = wire::StreamReassembler::new();
        let mut done = None;
        for f in &frames {
            let (h, p) = wire::decode_frame(f).unwrap();
            done = reasm.push(&h, p).unwrap();
        }
        assert!(done.is_some(), "FIN must complete the stream");
    }

    let push_all = |order: &[usize]| -> Result<Option<Vec<u8>>, WireError> {
        let mut reasm = wire::StreamReassembler::new();
        let mut out = None;
        for &i in order {
            let (h, p) = wire::decode_frame(&frames[i]).unwrap();
            out = reasm.push(&h, p)?;
        }
        Ok(out)
    };

    // Duplicated, skipped, and not-at-zero sequence numbers.
    assert!(matches!(
        push_all(&[0, 0]),
        Err(WireError::StreamSequence {
            expected: 1,
            got: 0
        })
    ));
    assert!(matches!(
        push_all(&[0, 2]),
        Err(WireError::StreamSequence {
            expected: 1,
            got: 2
        })
    ));
    assert!(matches!(
        push_all(&[1]),
        Err(WireError::StreamSequence {
            expected: 0,
            got: 1
        })
    ));

    // A fragment of a different response spliced mid-stream.
    {
        let other = stream_frames(99, 64);
        let mut reasm = wire::StreamReassembler::new();
        let (h, p) = wire::decode_frame(&frames[0]).unwrap();
        reasm.push(&h, p).unwrap();
        let (h2, p2) = wire::decode_frame(&other[1]).unwrap();
        assert!(matches!(
            reasm.push(&h2, p2),
            Err(WireError::StreamInterleaved {
                expected: 11,
                got: 99
            })
        ));
    }

    // Missing FIN: everything but the last fragment leaves the
    // reassembler mid-stream — which is what makes a connection close or
    // a stray non-stream frame surface as `StreamTruncated` in the
    // client (exercised end-to-end in tests/serve_stream.rs).
    {
        let mut reasm = wire::StreamReassembler::new();
        for f in &frames[..frames.len() - 1] {
            let (h, p) = wire::decode_frame(f).unwrap();
            assert!(reasm.push(&h, p).unwrap().is_none());
        }
        assert!(reasm.in_progress(), "no FIN seen, still reassembling");
    }

    // Random truncations and single-bit flips of real fragments: framing
    // (CRC, length, kind) rejects most; survivors must push typed or
    // clean, never panic.
    for _ in 0..600 {
        let f = &frames[rng.gen_range(0..frames.len())];
        let cut = rng.gen_range(0..f.len());
        let _ = wire::decode_frame(&f[..cut]);
        let mut flipped = f.clone();
        let byte = rng.gen_range(0..flipped.len());
        flipped[byte] ^= 1 << rng.gen_range(0..8u32);
        if let Ok((h, p)) = wire::decode_frame(&flipped) {
            let _ = wire::StreamReassembler::new().push(&h, p);
        }
    }

    // Random stream positions (the seq/FIN bytes live at 6..8, outside
    // the payload CRC): these always pass framing, so every sequencing
    // check rides on the reassembler being typed about them.
    for _ in 0..200 {
        let mut f = frames[rng.gen_range(0..frames.len())].clone();
        f[6] = rng.gen_range(0..=255u32) as u8;
        f[7] = rng.gen_range(0..=255u32) as u8;
        let (h, p) = wire::decode_frame(&f).unwrap();
        let _ = wire::StreamReassembler::new().push(&h, p);
    }

    // A stream frame aimed at the server is a protocol violation the
    // server reports and survives.
    let (server, handle) = spawn_server();
    let addr = handle.addr();
    let (kind, msg) = send_raw(addr, &frames[0]).expect("error frame");
    assert_eq!(kind, FrameKind::Error);
    assert!(msg.contains("frame kind 4"), "{msg}");
    let mut client = Client::connect(addr).unwrap();
    let batch = vec![slice("t2m", 0..4)];
    assert_eq!(client.batch(&batch).unwrap(), server.handle_batch(&batch));
    handle.shutdown();
}

/// Shutdown with clients mid-conversation: handlers are unblocked, the
/// accept thread joins, and subsequent client calls fail typed instead of
/// hanging.
#[test]
fn graceful_shutdown_unblocks_clients() {
    let (server, handle) = spawn_server();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let batch = vec![slice("t2m", 0..8)];
    assert_eq!(client.batch(&batch).unwrap(), server.handle_batch(&batch));

    handle.shutdown(); // joins accept + handler threads

    let err = client.batch(&batch).unwrap_err();
    assert!(
        matches!(
            err,
            WireError::ConnectionClosed { .. } | WireError::Io(_) | WireError::Truncated { .. }
        ),
        "{err:?}"
    );
}

/// `max_connections` bounds concurrent admissions; queued clients are
/// served once a slot frees up, and sequential clients always get in.
#[test]
fn admission_is_bounded_but_fair() {
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", archive_bytes()).unwrap();
    let server = Arc::new(Server::new(catalog, ServeConfig::default()));
    let config = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let handle = NetServer::bind("127.0.0.1:0", server, config)
        .unwrap()
        .spawn();
    let addr = handle.addr();
    for i in 0..3 {
        let mut client = Client::connect(addr).unwrap();
        let responses = client.batch(&[slice("t2m", i..i + 4)]).unwrap();
        assert!(responses[0].is_ok());
        // Dropping the client closes its connection, freeing the one slot.
    }
    assert_eq!(handle.net_stats().connections, 3);
    handle.shutdown();
}

/// Frame ids echo verbatim, even at the extremes.
#[test]
fn frame_ids_echo_verbatim() {
    let (_, handle) = spawn_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let payload = wire::encode_request_batch(&[Request::Stats]);
    for id in [0u64, 1, u64::MAX] {
        let frame = wire::encode_frame(FrameKind::Request, id, &payload).unwrap();
        stream.write_all(&frame).unwrap();
        let (header, _) = wire::read_frame(&mut stream).unwrap();
        assert_eq!(header.kind, FrameKind::Response);
        assert_eq!(header.id, id);
    }
    drop(stream);
    handle.shutdown();
}

/// The header is exactly as documented: 24 bytes, magic first.
#[test]
fn header_layout_is_stable() {
    assert_eq!(HEADER_LEN, 24);
    let frame = wire::encode_frame(FrameKind::Request, 0x0102_0304_0506_0708, &[]).unwrap();
    assert_eq!(&frame[0..4], b"ECN1");
    assert_eq!(frame[4], wire::VERSION);
    assert_eq!(frame[5], FrameKind::Request.id());
    assert_eq!(&frame[6..8], &[0, 0]);
    assert_eq!(
        u64::from_le_bytes(frame[8..16].try_into().unwrap()),
        0x0102_0304_0506_0708
    );
}
