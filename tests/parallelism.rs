//! Cross-crate parallelism integration: the rayon shim's pool-backed data
//! parallelism composing with the task-graph executor, and end-to-end
//! determinism of the training/emulation hot paths under real threads.

use exaclim::{ClimateEmulator, EmulatorConfig};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_runtime::{Executor, SchedulerKind, TaskGraph};
use parking_lot::Mutex;
use rayon::prelude::*;

/// Rayon-shim calls from inside executor tasks must complete without
/// deadlock: executor workers block on the pool's completion latches while
/// pool workers (which never block on the pool — nested calls run inline)
/// crunch the data-parallel pieces.
#[test]
fn rayon_shim_inside_executor_tasks_completes() {
    for sched in [
        SchedulerKind::WorkStealing,
        SchedulerKind::PriorityHeap,
        SchedulerKind::Fifo,
    ] {
        let ntasks = 16usize;
        let mut g = TaskGraph::new();
        for i in 0..ntasks as u64 {
            g.add(exaclim_runtime::graph::TaskKind::Generic(i), 0, &[]);
        }
        let results = Mutex::new(vec![0u64; ntasks]);
        Executor::new(4, sched)
            .run(&g, |id, _| {
                // Data-parallel work nested inside a task-parallel task.
                let data: Vec<u64> = (0..512).into_par_iter().map(|i| (i + id) as u64).collect();
                let total: u64 = data.par_chunks(64).map(|c| c.iter().sum::<u64>()).sum();
                results.lock()[id] = total;
                Ok(())
            })
            .unwrap_or_else(|e| panic!("{sched:?}: {e}"));
        for (id, &total) in results.lock().iter().enumerate() {
            let expect: u64 = (0..512u64).map(|i| i + id as u64).sum();
            assert_eq!(total, expect, "{sched:?}: task {id}");
        }
    }
}

/// Training and emulation run the rayon shim across every stage (trend fit,
/// SHT batches, coefficient paths); for a fixed dataset and seed the output
/// must be bit-identical from run to run, whatever the pool size.
#[test]
fn training_and_emulation_are_deterministic_under_parallelism() {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    let training = generator.generate_member(0, 2 * 365);
    let a = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    let b = ClimateEmulator::train(&training, EmulatorConfig::small(8)).unwrap();
    assert_eq!(a.factor.len(), b.factor.len());
    for (i, (x, y)) in a.factor.iter().zip(&b.factor).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "factor element {i}");
    }
    for (p, (x, y)) in a.trend.iter().zip(&b.trend).enumerate() {
        assert_eq!(x.sigma.to_bits(), y.sigma.to_bits(), "sigma at {p}");
        assert_eq!(x.beta1.to_bits(), y.beta1.to_bits(), "beta1 at {p}");
    }
    for (i, (x, y)) in a.v2.iter().zip(&b.v2).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "v2 at {i}");
    }
    let ea = a.emulate(120, 9).unwrap();
    let eb = b.emulate(120, 9).unwrap();
    for (i, (x, y)) in ea.data.iter().zip(&eb.data).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "emulated value {i}");
    }
}

/// The SHT batch entry points distribute time slices over the pool; each
/// slice must match the sequential single-slice transform exactly.
#[test]
fn parallel_sht_batches_match_single_slice_transforms() {
    use exaclim_sht::{analysis_batch, ShtPlan};
    let plan = ShtPlan::equiangular(8, 12, 20);
    let n = plan.field_len();
    let t = 24;
    let data: Vec<f64> = (0..n * t)
        .map(|i| (i as f64 * 0.37).sin() + (i as f64 * 0.011).cos())
        .collect();
    let batch = analysis_batch(&plan, &data, t);
    for (k, coeffs) in batch.iter().enumerate() {
        let single = plan.analysis(&data[k * n..(k + 1) * n]);
        assert!(
            coeffs.max_abs_diff(&single) == 0.0,
            "slice {k} differs from the sequential transform"
        );
    }
}
