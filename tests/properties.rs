//! Property-based tests on the core substrates (proptest).

use exaclim_fft::{dft_naive, Fft};
use exaclim_linalg::f16::Half;
use exaclim_linalg::precision::{Precision, PrecisionPolicy};
use exaclim_linalg::tile::Tile;
use exaclim_mathkit::{Complex64, CubicSpline};
use exaclim_runtime::graph::{TaskGraph, TaskKind};
use exaclim_runtime::{Executor, SchedulerKind};
use exaclim_sht::HarmonicCoeffs;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_any_length(
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let mut v = seed;
        let data: Vec<Complex64> = (0..n).map(|_| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let re = ((v >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let im = ((v >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            Complex64::new(re, im)
        }).collect();
        let plan = Fft::new(n);
        let mut x = data.clone();
        plan.forward(&mut x);
        plan.inverse(&mut x);
        for (a, b) in x.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_dft(n in 1usize..64, seed in 0u64..100) {
        let mut v = seed.wrapping_add(7);
        let data: Vec<Complex64> = (0..n).map(|_| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            Complex64::new(((v >> 40) as f64) / 1e7 - 0.8, ((v >> 20) & 0xFFFFF) as f64 / 1e6)
        }).collect();
        let mut x = data.clone();
        Fft::new(n).forward(&mut x);
        let expect = dft_naive(&data, false);
        for (a, b) in x.iter().zip(&expect) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn f16_roundtrip_is_identity_on_f16_values(bits in 0u16..=u16::MAX) {
        let h = Half(bits);
        if !h.is_nan() {
            prop_assert_eq!(Half::from_f32(h.to_f32()).0, bits);
        }
    }

    #[test]
    fn f16_conversion_error_bounded(x in -60000.0f64..60000.0) {
        let h = Half::from_f64(x).to_f64();
        if x != 0.0 && x.abs() > 6.2e-5 {
            // Normal range: relative error ≤ unit roundoff.
            prop_assert!(((h - x) / x).abs() <= Half::UNIT_ROUNDOFF * 1.0001);
        } else {
            // Subnormal range: absolute error ≤ half the smallest subnormal
            // spacing (2⁻²⁴).
            prop_assert!((h - x).abs() <= 2f64.powi(-25) * 1.0001);
        }
    }

    #[test]
    fn spline_passes_through_knots(
        ys in proptest::collection::vec(-100.0f64..100.0, 2..20),
    ) {
        let sp = CubicSpline::uniform(0.0, 1.0, &ys);
        for (i, y) in ys.iter().enumerate() {
            prop_assert!((sp.eval(i as f64) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn coeff_real_packing_roundtrip(lmax in 1usize..12, seed in 0u64..50) {
        let mut v = seed;
        let mut c = HarmonicCoeffs::zeros(lmax);
        for l in 0..lmax {
            for m in 0..=l {
                v = v.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let re = ((v >> 12) as f64 / (1u64 << 52) as f64) - 1.0;
                c.set(l, m, Complex64::new(re, if m == 0 { 0.0 } else { re * 0.3 }));
            }
        }
        let packed = c.to_real_vector();
        prop_assert_eq!(packed.len(), lmax * lmax);
        let back = HarmonicCoeffs::from_real_vector(lmax, &packed);
        prop_assert!(c.max_abs_diff(&back) < 1e-13);
        // Isometry.
        let norm2: f64 = packed.iter().map(|x| x * x).sum();
        prop_assert!((norm2 - c.total_power()).abs() < 1e-10 * norm2.max(1.0));
    }

    #[test]
    fn tile_conversion_narrowing_is_idempotent(
        vals in proptest::collection::vec(-100.0f64..100.0, 16),
        p in prop_oneof![Just(Precision::Half), Just(Precision::Single), Just(Precision::Double)],
    ) {
        let t = Tile::from_f64(4, &vals, p);
        let once = t.convert(p);
        prop_assert_eq!(t.to_f64(), once.to_f64());
        // Narrow → widen → narrow is stable.
        let wide = t.convert(Precision::Double);
        let back = wide.convert(p);
        prop_assert_eq!(t.to_f64(), back.to_f64());
    }

    #[test]
    fn precision_policy_is_symmetric_in_band_distance(
        i in 0usize..64, j in 0usize..64,
    ) {
        for policy in [
            PrecisionPolicy::dp(),
            PrecisionPolicy::dp_sp(),
            PrecisionPolicy::dp_sp_hp(64),
            PrecisionPolicy::dp_hp(),
        ] {
            prop_assert_eq!(policy.assign(i, j, 1.0), policy.assign(j, i, 1.0));
        }
    }

    #[test]
    fn legendre_addition_theorem_random_theta(theta in 0.05f64..3.09) {
        // Σ_m |Y_{ℓm}(θ,φ)|² = (2ℓ+1)/4π for every ℓ, θ.
        use exaclim_sphere::legendre::{LegendreTable, idx};
        let lmax = 12;
        let t = LegendreTable::new(lmax);
        let v = t.eval(theta);
        for l in 0..=lmax {
            let mut s = v[idx(l, 0)] * v[idx(l, 0)];
            for m in 1..=l {
                s += 2.0 * v[idx(l, m)] * v[idx(l, m)];
            }
            let expect = (2.0 * l as f64 + 1.0) / (4.0 * std::f64::consts::PI);
            prop_assert!((s - expect).abs() < 1e-10, "l={l}: {s} vs {expect}");
        }
    }

    #[test]
    fn wigner_rows_orthonormal_random_degree(l in 1usize..24) {
        use exaclim_sphere::wigner::WignerPiHalf;
        let w = WignerPiHalf::new(l);
        let li = l as i64;
        for m in [-li, 0, li / 2, li] {
            let mut norm = 0.0;
            for mp in -li..=li {
                norm += w.get(l, mp, m) * w.get(l, mp, m);
            }
            prop_assert!((norm - 1.0).abs() < 1e-10, "l={l} m={m}: {norm}");
        }
    }

    #[test]
    fn sht_roundtrip_random_bandlimit(lmax in 2usize..14, seed in 0u64..30) {
        use exaclim_sht::ShtPlan;
        let plan = ShtPlan::equiangular(lmax, lmax + 2, 2 * lmax + 2);
        let mut v = seed.wrapping_add(3);
        let mut c = HarmonicCoeffs::zeros(lmax);
        for l in 0..lmax {
            for m in 0..=l {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let re = ((v >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                c.set(l, m, Complex64::new(re, if m == 0 { 0.0 } else { -re }));
            }
        }
        let field = plan.synthesis(&c);
        let back = plan.analysis(&field);
        prop_assert!(c.max_abs_diff(&back) < 1e-9);
    }

    #[test]
    fn distsim_sender_never_exceeds_receiver_traffic(
        nt in 2usize..24,
        p in 1usize..5,
        q in 1usize..5,
    ) {
        use exaclim_runtime::distsim::{ConversionSide, DistConfig, simulate_distribution};
        for policy in [
            PrecisionPolicy::dp(),
            PrecisionPolicy::dp_sp(),
            PrecisionPolicy::dp_hp(),
        ] {
            let send = simulate_distribution(
                nt, 32, &policy, &DistConfig { p, q, conversion: ConversionSide::Sender });
            let recv = simulate_distribution(
                nt, 32, &policy, &DistConfig { p, q, conversion: ConversionSide::Receiver });
            prop_assert!(send.bytes <= recv.bytes + 1e-9,
                "policy {} nt={nt} grid {p}x{q}", policy.label());
        }
    }

    #[test]
    fn executor_runs_random_dags_exactly_once(
        n_tasks in 1usize..60,
        edge_seed in 0u64..500,
        workers in 1usize..5,
    ) {
        // Random DAG: each task depends on a pseudo-random subset of
        // earlier tasks.
        let mut g = TaskGraph::new();
        let mut v = edge_seed;
        for i in 0..n_tasks {
            let mut deps = Vec::new();
            for d in 0..i {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if v % 7 == 0 {
                    deps.push(d);
                }
            }
            g.add(TaskKind::Generic(i as u64), (v % 100) as i64, &deps);
        }
        prop_assert!(g.validate());
        let ran = std::sync::Mutex::new(vec![false; n_tasks]);
        let order = std::sync::Mutex::new(Vec::new());
        Executor::new(workers, SchedulerKind::WorkStealing)
            .run(&g, |id, _| {
                let mut r = ran.lock().unwrap();
                if r[id] {
                    return Err("ran twice".into());
                }
                r[id] = true;
                order.lock().unwrap().push(id);
                Ok(())
            })
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(ran.lock().unwrap().iter().all(|&b| b));
        // Topological order respected.
        let order = order.lock().unwrap();
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(k, &t)| (t, k)).collect();
        for (id, node) in g.nodes().iter().enumerate() {
            for &s in &node.successors {
                prop_assert!(pos[&id] < pos[&s], "dependence violated");
            }
        }
    }
}
