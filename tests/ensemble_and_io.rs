//! Ensemble training and archive I/O: stage an R-member ensemble on disk in
//! the binary container, load it back, train jointly, and verify the
//! covariance benefits of pooling (eq. 9 with R > 1).

use exaclim::{validate_consistency, ClimateEmulator, EmulatorConfig};
use exaclim_climate::generator::Dataset;
use exaclim_climate::io::{decode_dataset, encode_dataset};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};

fn ensemble(r: u64, days: usize) -> Vec<Dataset> {
    let generator = SyntheticEra5::new(SyntheticEra5Config::small_daily(12));
    (0..r).map(|m| generator.generate_member(m, days)).collect()
}

#[test]
fn ensemble_roundtrips_through_archive_container() {
    let members = ensemble(3, 100);
    let dir = std::env::temp_dir();
    let mut loaded = Vec::new();
    for (k, m) in members.iter().enumerate() {
        let path = dir.join(format!("exaclim_ens_{k}.xclm"));
        std::fs::write(&path, encode_dataset(m)).unwrap();
        let raw = bytes::Bytes::from(std::fs::read(&path).unwrap());
        std::fs::remove_file(&path).ok();
        loaded.push(decode_dataset(raw).unwrap());
    }
    for (a, b) in members.iter().zip(&loaded) {
        assert_eq!(a.t_max, b.t_max);
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!((x - y).abs() < 1e-2, "f32 container precision");
        }
    }
}

#[test]
fn ensemble_trained_emulator_is_consistent_with_every_member() {
    let members = ensemble(3, 2 * 365);
    let refs: Vec<&Dataset> = members.iter().collect();
    let em = ClimateEmulator::train_ensemble(&refs, EmulatorConfig::small(8)).unwrap();
    let emulation = em.emulate(2 * 365, 31).unwrap();
    for (k, m) in members.iter().enumerate() {
        let report = validate_consistency(m, &emulation);
        assert!(report.passes(), "member {k}: {report:?}");
    }
}

#[test]
fn pooling_members_stabilizes_the_innovation_covariance() {
    // With a short record, R = 4 members give a better-conditioned Û than
    // R = 1 (the paper's motivation for ensemble training): the diagonal
    // jitter needed for positive definiteness must not grow, and the
    // factor must stay finite.
    let members = ensemble(4, 200);
    let refs: Vec<&Dataset> = members.iter().collect();
    let single = ClimateEmulator::train(&members[0], EmulatorConfig::small(8)).unwrap();
    let pooled = ClimateEmulator::train_ensemble(&refs, EmulatorConfig::small(8)).unwrap();
    assert!(pooled.jitter <= single.jitter.max(1e-30) * 1.0001);
    assert!(pooled.factor.iter().all(|v| v.is_finite()));
    // Pooled diagonal of V should be no larger on average (tighter
    // covariance estimate, same underlying process).
    let dim = 64;
    let diag_mean =
        |f: &[f64]| -> f64 { (0..dim).map(|i| f[i * dim + i]).sum::<f64>() / dim as f64 };
    let (ds, dp) = (diag_mean(&single.factor), diag_mean(&pooled.factor));
    assert!((ds / dp - 1.0).abs() < 0.5, "same scale: {ds} vs {dp}");
}
