//! Container round-trips and corruption handling: [`Dataset`]s through the
//! legacy XCLM container and the chunked ECA1 archive, proptest-style
//! (seeded generator loop) plus targeted corruption cases asserting the
//! exact error variant.

use exaclim_climate::generator::Dataset;
use exaclim_climate::io::{
    convert_xclm_to_eca1, dataset_from_eca1, dataset_to_eca1, decode_dataset, encode_dataset,
    ConvertError, DecodeError,
};
use exaclim_climate::{SyntheticEra5, SyntheticEra5Config};
use exaclim_store::{
    read_snapshot_file, write_snapshot_file, Archive, ArchiveError, ArchiveReader, ArchiveWriter,
    ByteCodec, Codec, FieldMeta, Snapshot,
};
use std::io::Cursor;

/// Deterministic member with case-dependent geometry and length.
fn member(case: u64) -> Dataset {
    let lmax = [8usize, 10, 12][(case % 3) as usize];
    let days = [7usize, 30, 65, 128][(case % 4) as usize];
    let mut cfg = SyntheticEra5Config::small_daily(lmax);
    if case % 2 == 1 {
        cfg.tau = 12;
    }
    SyntheticEra5::new(cfg).generate_member(case, days)
}

#[test]
fn seeded_roundtrips_through_both_containers() {
    for case in 0..12u64 {
        let d = member(case);
        // XCLM: f32 quantization.
        let back = decode_dataset(encode_dataset(&d)).unwrap();
        assert_eq!(
            (
                back.t_max,
                back.ntheta,
                back.nphi,
                back.start_year,
                back.tau
            ),
            (d.t_max, d.ntheta, d.nphi, d.start_year, d.tau),
            "case {case}"
        );
        for (a, b) in d.data.iter().zip(&back.data) {
            assert_eq!(((*a as f32) as f64).to_bits(), b.to_bits(), "case {case}");
        }
        // ECA1: exact at each codec's precision, cycling codecs by case.
        let codec = Codec::ALL[(case % Codec::ALL.len() as u64) as usize];
        let eca = dataset_to_eca1(&d, codec).unwrap();
        let back = dataset_from_eca1(eca).unwrap();
        assert_eq!(back.t_max, d.t_max, "case {case}");
        for (a, b) in d.data.iter().zip(&back.data) {
            assert_eq!(
                codec.quantize(*a).to_bits(),
                b.to_bits(),
                "case {case} codec {}",
                codec.label()
            );
        }
        // XCLM → ECA1 conversion agrees with decoding the legacy blob.
        let converted =
            dataset_from_eca1(convert_xclm_to_eca1(encode_dataset(&d), Codec::F32).unwrap())
                .unwrap();
        let legacy = decode_dataset(encode_dataset(&d)).unwrap();
        assert_eq!(converted.data, legacy.data, "case {case}");
    }
}

#[test]
fn eca1_sliced_reads_match_full_reads() {
    for case in 0..6u64 {
        let d = member(case);
        let eca = dataset_to_eca1(&d, Codec::F32Shuffle).unwrap();
        let mut r = ArchiveReader::new(Cursor::new(eca.to_vec())).unwrap();
        let full = r.read_field_all("field").unwrap();
        let t = d.t_max as u64;
        for (lo, hi) in [(0, t), (0, 1), (t - 1, t), (t / 3, 2 * t / 3 + 1)] {
            let part = r.read_field_slices("field", lo..hi).unwrap();
            assert_eq!(
                part[..],
                full[lo as usize * d.npoints..hi as usize * d.npoints],
                "case {case} range {lo}..{hi}"
            );
        }
    }
}

/// Property sweep over the same seeded fixtures: for every codec, a
/// memory-mapped open, a buffered (mutex-fallback) open, and the exclusive
/// `ArchiveReader` must produce bit-identical full reads, sliced reads,
/// and snapshot payloads. This is the guarantee that lets `EXACLIM_MMAP`
/// switch backends without anyone noticing values change.
#[test]
fn mmap_and_buffered_reads_are_bit_identical_across_codecs() {
    for case in 0..Codec::ALL.len() as u64 {
        let d = member(case);
        let codec = Codec::ALL[case as usize];
        let meta = FieldMeta {
            ntheta: d.ntheta,
            nphi: d.nphi,
            start_year: d.start_year,
            tau: d.tau,
        };
        let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
        w.add_field("field", codec, meta, d.npoints, 16, &d.data)
            .unwrap();
        w.add_snapshot("notes", 2, ByteCodec::Rle, b"backend sweep", 32)
            .unwrap();
        let raw = w.finish().unwrap().0.into_inner();

        let path = std::env::temp_dir().join(format!(
            "exaclim_backend_sweep_{}_{case}.eca1",
            std::process::id()
        ));
        std::fs::write(&path, &raw).unwrap();
        let mapped = Archive::open_with(&path, true).unwrap();
        let buffered = Archive::open_with(&path, false).unwrap();
        let mut reader = ArchiveReader::new(Cursor::new(raw)).unwrap();
        assert_eq!(buffered.backend(), "stream");
        if exaclim_store::MMAP_SUPPORTED {
            assert_eq!(mapped.backend(), "mmap");
            assert!(mapped.is_zero_copy());
            assert!(mapped.read_chunk_stored(0, 0).unwrap().is_borrowed());
        }

        let want = reader.read_field_all("field").unwrap();
        assert_eq!(mapped.read_field_all("field").unwrap(), want, "case {case}");
        assert_eq!(
            buffered.read_field_all("field").unwrap(),
            want,
            "case {case}"
        );
        let t = d.t_max as u64;
        for (lo, hi) in [(0, t), (0, 1), (t - 1, t), (t / 3, 2 * t / 3 + 1)] {
            let want = reader.read_field_slices("field", lo..hi).unwrap();
            assert_eq!(
                mapped.read_field_slices("field", lo..hi).unwrap(),
                want,
                "case {case} range {lo}..{hi} (mmap)"
            );
            assert_eq!(
                buffered.read_field_slices("field", lo..hi).unwrap(),
                want,
                "case {case} range {lo}..{hi} (buffered)"
            );
        }
        assert_eq!(
            mapped.read_snapshot("notes").unwrap(),
            buffered.read_snapshot("notes").unwrap()
        );
        mapped.verify().unwrap();
        buffered.verify().unwrap();
        drop((mapped, buffered));
        std::fs::remove_file(&path).ok();
    }
}

/// Chunk corruption is caught identically through a mapped source: the
/// CRC check runs on the borrowed view before anything decodes.
#[test]
fn mapped_reads_still_verify_checksums() {
    let d = member(1);
    let mut raw = dataset_to_eca1(&d, Codec::F32Shuffle).unwrap().to_vec();
    let chunk0 = {
        let r = ArchiveReader::new(Cursor::new(raw.clone())).unwrap();
        r.member("field").unwrap().chunks[0]
    };
    raw[chunk0.offset as usize + 1] ^= 0x04;
    let path = std::env::temp_dir().join(format!("exaclim_mapped_crc_{}.eca1", std::process::id()));
    std::fs::write(&path, &raw).unwrap();
    let mapped = Archive::open_with(&path, true).unwrap();
    match mapped.read_field_all("field").unwrap_err() {
        ArchiveError::ChecksumMismatch { member, chunk } => {
            assert_eq!((member.as_str(), chunk), ("field", 0));
        }
        other => panic!("expected checksum mismatch, got {other}"),
    }
    drop(mapped);
    std::fs::remove_file(&path).ok();
}

#[test]
fn compressed_codec_beats_raw_f32_on_smooth_fields() {
    let d = member(2);
    let f32_len = dataset_to_eca1(&d, Codec::F32).unwrap().len();
    let packed_len = dataset_to_eca1(&d, Codec::F32Shuffle).unwrap().len();
    assert!(
        packed_len < f32_len,
        "byte-shuffle+RLE must be strictly smaller than raw f32: {packed_len} vs {f32_len}"
    );
}

#[test]
fn xclm_corruption_cases_hit_the_right_variant() {
    let d = member(0);
    let good = encode_dataset(&d);
    // Bad magic.
    let mut raw = good.to_vec();
    raw[0] = b'Y';
    assert_eq!(
        decode_dataset(bytes::Bytes::from(raw)).unwrap_err(),
        DecodeError::BadMagic
    );
    // Bad version.
    let mut raw = good.to_vec();
    raw[4] = 2;
    assert_eq!(
        decode_dataset(bytes::Bytes::from(raw)).unwrap_err(),
        DecodeError::BadVersion(2)
    );
    // Truncation, including inside the header.
    for cut in [0usize, 20, good.len() - 1] {
        let raw = good.slice(0..cut);
        assert_eq!(
            decode_dataset(raw).unwrap_err(),
            DecodeError::Truncated,
            "cut {cut}"
        );
    }
    // Trailing garbage.
    let mut raw = good.to_vec();
    raw.extend_from_slice(&[0u8; 9]);
    assert_eq!(
        decode_dataset(bytes::Bytes::from(raw)).unwrap_err(),
        DecodeError::TrailingBytes(9)
    );
    // Conversion propagates the legacy error.
    let mut raw = good.to_vec();
    raw[0] = b'Y';
    assert_eq!(
        convert_xclm_to_eca1(bytes::Bytes::from(raw), Codec::F32).unwrap_err(),
        ConvertError::Legacy(DecodeError::BadMagic)
    );
}

#[test]
fn eca1_corruption_cases_hit_the_right_variant() {
    let d = member(1);
    let good = dataset_to_eca1(&d, Codec::F32).unwrap().to_vec();

    // Bad magic.
    let mut raw = good.clone();
    raw[0] = b'Z';
    assert!(matches!(
        dataset_from_eca1(raw.into()).unwrap_err(),
        ArchiveError::BadMagic
    ));

    // Bad version.
    let mut raw = good.clone();
    raw[4] = 9;
    assert!(matches!(
        dataset_from_eca1(raw.into()).unwrap_err(),
        ArchiveError::BadVersion(9)
    ));

    // Checksum mismatch in a specific chunk: flip one payload byte.
    let chunks = {
        let r = ArchiveReader::new(Cursor::new(good.clone())).unwrap();
        r.member("field").unwrap().chunks.clone()
    };
    let mut raw = good.clone();
    raw[chunks[0].offset as usize] ^= 0x80;
    match dataset_from_eca1(raw.into()).unwrap_err() {
        ArchiveError::ChecksumMismatch { member, chunk } => {
            assert_eq!((member.as_str(), chunk), ("field", 0));
        }
        other => panic!("expected checksum mismatch, got {other}"),
    }

    // Truncated chunk: cut the stream inside the last chunk. The directory
    // is gone with it, so the reader reports structural corruption.
    let last = chunks.last().unwrap();
    let mut raw = good.clone();
    raw.truncate((last.offset + last.stored_len / 2) as usize);
    assert!(matches!(
        ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
        ArchiveError::Corrupt(_)
    ));

    // A directory that promises a chunk beyond the payload region is a
    // truncated chunk. Build it with a hand-written archive whose chunk
    // extends past where the directory starts.
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    w.add_field(
        "field",
        Codec::Raw64,
        FieldMeta {
            ntheta: 1,
            nphi: 2,
            start_year: 2000,
            tau: 365,
        },
        2,
        1,
        &[1.0, 2.0, 3.0, 4.0],
    )
    .unwrap();
    let (cursor, _) = w.finish().unwrap();
    let mut raw = cursor.into_inner();
    // Enlarge the first chunk's stored_len field in the directory. The
    // directory CRC would catch this edit, so recompute it.
    let dir_offset = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
    let dir_len = u64::from_le_bytes(raw[16..24].try_into().unwrap()) as usize;
    // Chunk entries start after: u32 count, u16 name_len + name, u8 kind,
    // u8 codec, u32 ver, u32 ntheta, u32 nphi, i64 year, u32 tau, u64
    // t_max, u32 chunk_t, u64 vps, u32 chunk_count.
    let entry_off = dir_offset + 4 + 2 + "field".len() + 1 + 1 + 4 + 4 + 4 + 8 + 4 + 8 + 4 + 8 + 4;
    let stored_len_off = entry_off + 8;
    raw[stored_len_off..stored_len_off + 8].copy_from_slice(&10_000u64.to_le_bytes());
    let crc = exaclim_store::format::crc32(&raw[dir_offset..dir_offset + dir_len]);
    let crc_off = dir_offset + dir_len;
    raw[crc_off..crc_off + 4].copy_from_slice(&crc.to_le_bytes());
    match ArchiveReader::new(Cursor::new(raw)).unwrap_err() {
        ArchiveError::TruncatedChunk { member, chunk } => {
            assert_eq!((member.as_str(), chunk), ("field", 0));
        }
        other => panic!("expected truncated chunk, got {other}"),
    }

    // Trailing garbage after the container.
    let mut raw = good.clone();
    raw.extend_from_slice(b"tail");
    assert!(matches!(
        ArchiveReader::new(Cursor::new(raw)).unwrap_err(),
        ArchiveError::TrailingBytes { .. }
    ));

    // Unknown codec id in the directory (re-CRC'd so only the codec check
    // can fire).
    let mut raw = good.clone();
    let dir_offset = u64::from_le_bytes(raw[8..16].try_into().unwrap()) as usize;
    let dir_len = u64::from_le_bytes(raw[16..24].try_into().unwrap()) as usize;
    let codec_off = dir_offset + 4 + 2 + "field".len() + 1;
    raw[codec_off] = 200;
    let crc = exaclim_store::format::crc32(&raw[dir_offset..dir_offset + dir_len]);
    let crc_off = dir_offset + dir_len;
    raw[crc_off..crc_off + 4].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        dataset_from_eca1(raw.into()).unwrap_err(),
        ArchiveError::UnknownCodec(200)
    ));
}

#[test]
fn snapshot_files_roundtrip_and_reject_damage() {
    let path = std::env::temp_dir().join("exaclim_roundtrip_snapshot.eca1");
    let snap = Snapshot::new("model", 4, vec![0u8; 4096]);
    write_snapshot_file(&path, &snap).unwrap();
    assert_eq!(read_snapshot_file(&path, "model").unwrap(), snap);

    // Flip a payload byte and fix nothing else: checksum must fire.
    let mut raw = std::fs::read(&path).unwrap();
    raw[40] ^= 0xFF;
    std::fs::write(&path, &raw).unwrap();
    let err = read_snapshot_file(&path, "model").unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(
            err,
            ArchiveError::ChecksumMismatch { .. } | ArchiveError::Corrupt(_)
        ),
        "{err}"
    );
}

#[test]
fn multi_member_archives_keep_members_independent() {
    let a = member(0);
    let b = member(3);
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    let meta = |d: &Dataset| FieldMeta {
        ntheta: d.ntheta,
        nphi: d.nphi,
        start_year: d.start_year,
        tau: d.tau,
    };
    w.add_field("member0", Codec::F32, meta(&a), a.npoints, 16, &a.data)
        .unwrap();
    w.add_field(
        "member1",
        Codec::F16Shuffle,
        meta(&b),
        b.npoints,
        16,
        &b.data,
    )
    .unwrap();
    w.add_snapshot("notes", 1, ByteCodec::Rle, b"ensemble of two", 64)
        .unwrap();
    let (cursor, _) = w.finish().unwrap();
    let mut r = ArchiveReader::new(Cursor::new(cursor.into_inner())).unwrap();
    assert_eq!(r.members().len(), 3);
    let a_back = r.read_field_all("member0").unwrap();
    let b_back = r.read_field_all("member1").unwrap();
    assert_eq!(a_back.len(), a.data.len());
    assert_eq!(b_back.len(), b.data.len());
    for (x, y) in a.data.iter().zip(&a_back) {
        assert_eq!(Codec::F32.quantize(*x), *y);
    }
    for (x, y) in b.data.iter().zip(&b_back) {
        assert_eq!(Codec::F16Shuffle.quantize(*x), *y);
    }
    assert_eq!(
        r.read_snapshot("notes").unwrap(),
        (1, b"ensemble of two".to_vec())
    );
    r.verify().unwrap();
}
