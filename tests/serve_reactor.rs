//! Event-driven network core at scale: the reactor path must hold
//! hundreds of mostly-idle keep-alive connections with a thread count
//! that is a constant (reactor + dispatch + pool), not a function of
//! connection count; idle, half-open, and slowloris peers must be reaped
//! by the deadline without disturbing live clients — on both the reactor
//! path and the thread-per-connection fallback.
#![cfg(unix)]

use exaclim_serve::{
    Catalog, Client, NetConfig, NetServer, NetServerHandle, Request, ServeConfig, Server,
    SliceRequest,
};
use exaclim_store::{ArchiveWriter, Codec, FieldMeta};
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const VPS: usize = 10;
const T_MAX: u64 = 64;

fn archive_bytes() -> Vec<u8> {
    let mut w = ArchiveWriter::new(Cursor::new(Vec::new())).unwrap();
    for (name, phase, codec) in [("t2m", 0.0, Codec::F32Shuffle), ("u10", 2.3, Codec::Raw64)] {
        let data: Vec<f64> = (0..VPS * T_MAX as usize)
            .map(|i| 260.0 + 25.0 * (i as f64 * 0.017 + phase).sin())
            .collect();
        w.add_field(name, codec, FieldMeta::default(), VPS, 9, &data)
            .unwrap();
    }
    w.finish().unwrap().0.into_inner()
}

fn spawn_with(config: NetConfig) -> (Arc<Server>, NetServerHandle) {
    let mut catalog = Catalog::new();
    catalog.open_archive_bytes("a", archive_bytes()).unwrap();
    let server = Arc::new(Server::new(catalog, ServeConfig::default()));
    let handle = NetServer::bind("127.0.0.1:0", Arc::clone(&server), config)
        .unwrap()
        .spawn();
    (server, handle)
}

fn slice(member: &str, range: std::ops::Range<u64>) -> Request {
    Request::Slice(SliceRequest {
        archive: "a".to_string(),
        member: member.to_string(),
        range,
    })
}

/// Spin until `pred` holds or `timeout` passes; returns whether it held.
fn eventually(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

/// This process's current thread count (linux only; `None` elsewhere, so
/// the bound simply isn't asserted there).
fn thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Raise the fd soft limit toward the hard limit (CI runners often sit at
/// 1024, too tight for a 512-connection loopback test that holds both
/// ends of every socket in one process).
fn raise_fd_limit(want: u64) {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;
    unsafe extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: plain POSIX calls on a local, correctly-shaped struct.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return;
        }
        if lim.cur < want.min(lim.max) {
            lim.cur = want.min(lim.max);
            let _ = setrlimit(RLIMIT_NOFILE, &lim);
        }
    }
}

/// ≥512 idle keep-alive connections plus hot traffic: every hot response
/// stays bit-identical to the in-process answer, the idle fleet registers
/// in the gauges, and the server's thread count stays a small constant —
/// the whole point of the event-driven refactor.
#[test]
fn idle_fleet_of_512_served_by_a_bounded_thread_count() {
    raise_fd_limit(4096);
    let (server, handle) = spawn_with(NetConfig {
        max_connections: 2048,
        reactor: Some(true),
        ..NetConfig::default()
    });
    let addr = handle.addr();

    // Warm up the dispatch/pool threads so the baseline includes every
    // lazily-created worker, then measure.
    let mut warm = Client::connect(addr).unwrap();
    assert!(warm.batch(&[slice("t2m", 0..8)]).unwrap()[0].is_ok());
    let baseline = thread_count();

    let mut idle = Vec::new();
    for i in 0..512 {
        match Client::connect(addr) {
            Ok(c) => idle.push(c),
            Err(e) => panic!("idle connect {i} failed: {e}"),
        }
    }
    assert!(
        eventually(Duration::from_secs(10), || {
            handle.net_stats().open_connections >= 513 // idle fleet + warm
        }),
        "server never admitted the idle fleet: {:?}",
        handle.net_stats()
    );

    // Hot traffic through the standing fleet: a few of the idle
    // connections plus fresh ones, all bit-identical to in-process.
    let batch = vec![
        slice("t2m", 0..T_MAX),
        slice("u10", 3..40),
        slice("missing", 0..1),
    ];
    let expected = server.handle_batch(&batch);
    for client in idle.iter_mut().step_by(100) {
        assert_eq!(client.batch(&batch).unwrap(), expected);
    }
    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(fresh.batch(&batch).unwrap(), expected);

    // Thread count must be a constant (reactor + dispatch workers, both
    // ≤ 8, plus slack for anything the runtime spun up) — emphatically
    // not ~512 as thread-per-connection would be.
    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert!(
            after <= before + 12,
            "thread count grew with connections: {before} -> {after}"
        );
    }

    let stats = handle.net_stats();
    assert!(stats.peak_connections >= 513, "{stats:?}");
    assert!(stats.connections >= 514, "{stats:?}");
    assert_eq!(stats.wire_errors, 0, "{stats:?}");

    // Closing the fleet drains the gauge back down.
    drop(idle);
    drop(fresh);
    drop(warm);
    assert!(
        eventually(Duration::from_secs(10), || {
            handle.net_stats().open_connections == 0
        }),
        "gauge never drained: {:?}",
        handle.net_stats()
    );
    handle.shutdown();
}

/// Slowloris (dribbling bytes), half-open (silent), and a live client,
/// all at once on the reactor path: the deadline reaps the first two
/// while the live client keeps getting served, before and after.
#[test]
fn reactor_reaps_slowloris_and_half_open_peers() {
    let (server, handle) = spawn_with(NetConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        reactor: Some(true),
        ..NetConfig::default()
    });
    let addr = handle.addr();

    // Half-open: connects, never sends.
    let half_open = TcpStream::connect(addr).unwrap();
    // Slowloris: dribbles header bytes, never completes a frame.
    let mut slowloris = TcpStream::connect(addr).unwrap();
    slowloris.write_all(b"EC").unwrap();

    let mut live = Client::connect(addr).unwrap();
    let batch = vec![slice("t2m", 0..12), slice("u10", 5..9)];
    let expected = server.handle_batch(&batch);

    // Keep the live client busy across several deadline windows while
    // dribbling one more byte to the slowloris socket: partial progress
    // must not count as liveness.
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(600) {
        assert_eq!(live.batch(&batch).unwrap(), expected);
        let _ = slowloris.write_all(b"N");
        std::thread::sleep(Duration::from_millis(40));
    }

    // The live client keeps talking while we wait — its own deadline
    // keeps re-arming, so only the two broken peers can be reaped.
    assert!(
        eventually(Duration::from_secs(5), || {
            assert_eq!(live.batch(&batch).unwrap(), expected);
            handle.net_stats().reaped_idle >= 2
        }),
        "slowloris/half-open never reaped: {:?}",
        handle.net_stats()
    );
    // The reaped sockets are actually closed: reads see EOF, not a hang.
    let mut buf = Vec::new();
    let mut half_open = half_open;
    half_open
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(half_open.read_to_end(&mut buf).unwrap_or(0), buf.len());

    // The survivor still works, as does a brand-new client.
    assert_eq!(live.batch(&batch).unwrap(), expected);
    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(fresh.batch(&batch).unwrap(), expected);
    handle.shutdown();
}

/// The same reaping contract on the thread-per-connection fallback: a
/// handler thread parked in a read gets a deadline too (enforced through
/// socket read timeouts), so half-open peers cannot pin threads and
/// admission permits forever.
#[test]
fn threaded_fallback_reaps_idle_connections() {
    let (server, handle) = spawn_with(NetConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        reactor: Some(false),
        ..NetConfig::default()
    });
    let addr = handle.addr();

    let _half_open = TcpStream::connect(addr).unwrap();
    let mut slowloris = TcpStream::connect(addr).unwrap();
    slowloris.write_all(b"ECN1").unwrap();

    let mut live = Client::connect(addr).unwrap();
    let batch = vec![slice("t2m", 0..12)];
    let expected = server.handle_batch(&batch);
    assert_eq!(live.batch(&batch).unwrap(), expected);

    // As above: keep the live connection's deadline re-arming while the
    // broken peers run theirs out.
    assert!(
        eventually(Duration::from_secs(5), || {
            assert_eq!(live.batch(&batch).unwrap(), expected);
            handle.net_stats().reaped_idle >= 2
        }),
        "fallback never reaped: {:?}",
        handle.net_stats()
    );
    assert_eq!(live.batch(&batch).unwrap(), expected);
    handle.shutdown();
}

/// Graceful shutdown on the reactor path with a standing idle fleet:
/// `shutdown()` must drain and join promptly — the wakeup-fd nudge, not a
/// timeout, unblocks the parked reactor.
#[test]
fn reactor_shutdown_drains_idle_fleet_promptly() {
    let (_server, handle) = spawn_with(NetConfig {
        reactor: Some(true),
        ..NetConfig::default()
    });
    let addr = handle.addr();
    let mut clients = Vec::new();
    for _ in 0..32 {
        clients.push(Client::connect(addr).unwrap());
    }
    assert!(eventually(Duration::from_secs(5), || {
        handle.net_stats().open_connections >= 32
    }));
    let start = Instant::now();
    handle.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        start.elapsed()
    );
}
